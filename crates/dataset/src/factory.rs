//! The export grid and the learned-vs-rule-based comparison.
//!
//! One export cell = one (attack arm × seed) simulation run with a
//! passive [`ObservationSink`] tap: every accepted beacon is rendered
//! into the shared feature vector ([`platoon_detect::features`]) in
//! arrival order, then labeled post-run from the arm's
//! [`TruthLabels`](platoon_sim::metrics::TruthLabels) — a row is
//! malicious iff its reception time is at or
//! after `truth.start` *and* its claimed sender is guilty (explicit
//! guilty set or the `guilty_from` identity floor). Channel-level attacks
//! (jamming) remove beacons rather than forging them, so their rows are
//! benign by construction — the honest label, not a gap.
//!
//! Cells run on the deterministic [`Batch`] harness with pinned per-cell
//! seeds, so the assembled shards are byte-identical at any worker count.
//! The split rule is by seed offset: even offsets train, odd offsets
//! test — whole cells, never individual rows, so no row can leak across
//! the split.
//!
//! The learned half: logistic regression trained on the train shard
//! (deterministic SGD, [`platoon_detect::learned`]), wrapped as a
//! [`Detector`] in a single-detector pipeline, and scored on fresh
//! engine runs with the identical Table IV machinery and aggregation as
//! the rule-based `default` profile.

use crate::columnar::{CellBlock, Shard};
use platoon_core::experiments::common::{
    base_scenario, brake_profile, legit_joiner, make_attack, Effort, EXPERIMENT_BASE_SEED,
};
use platoon_core::experiments::table4;
use platoon_crypto::cert::PrincipalId;
use platoon_detect::detector::Detector;
use platoon_detect::features::{FeatureExtractor, NUM_FEATURES};
use platoon_detect::fusion::FusionConfig;
use platoon_detect::learned::{train, LearnedConfig, LearnedDetector, LogisticModel, TrainConfig};
use platoon_detect::observation::MessageObservation;
use platoon_detect::pipeline::Pipeline;
use platoon_sim::engine::ObservationSink;
use platoon_sim::harness::Batch;
use platoon_sim::prelude::{score_alerts, DetectionSummary, Engine};

/// Export seeds per attack arm (half train, half test).
pub fn seeds_per_cell(quick: bool) -> u64 {
    if quick {
        2
    } else {
        4
    }
}

/// Seeds per (attack, config) scoring arm of the comparison.
pub fn scoring_seeds(quick: bool) -> u64 {
    if quick {
        2
    } else {
        table4::SEEDS_PER_ARM
    }
}

/// Detector configurations compared in the report rows.
pub const COMPARED_CONFIGS: [&str; 2] = ["default", "learned"];

/// The streaming recorder attached to each export run: extracts feature
/// rows beacon-by-beacon and remembers (time, sender) for post-run
/// labeling.
#[derive(Debug, Default)]
struct BeaconRecorder {
    extractor: FeatureExtractor,
    features: Vec<[f64; NUM_FEATURES]>,
    meta: Vec<(f64, u64)>,
}

impl ObservationSink for BeaconRecorder {
    fn on_messages(&mut self, batch: &[MessageObservation]) {
        for obs in batch {
            if let MessageObservation::Beacon(b) = obs {
                self.features.push(self.extractor.extract(b));
                self.meta.push((b.time, b.sender.0));
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Builds the canonical engine for one arm — the same construction the
/// Table IV arms use (brake profile for replay/insider arms, the honest
/// joiner alongside the join flood).
fn engine_for(attack: &str, suffix: &str, effort: Effort, seed: u64) -> Engine {
    let label = format!("{attack}/{suffix}");
    let mut builder = base_scenario(&label, effort).seed(seed);
    if matches!(attack, "replay" | "insider-fdi") {
        builder = builder.profile(brake_profile());
    }
    let mut engine = Engine::new(builder.build());
    if attack != "benign" {
        engine.add_attack(make_attack(attack, effort));
    }
    if attack == "dos-join-flood" {
        engine.add_attack(Box::new(legit_joiner(effort.duration * 0.25)));
    }
    engine
}

/// Harness job body: one export cell — run, tap, label.
pub fn export_cell(attack: &str, effort: Effort, seed: u64, label: &str) -> CellBlock {
    let mut engine = engine_for(attack, "dataset", effort, seed);
    engine.attach_observation_sink(Box::new(BeaconRecorder::default()));
    engine.run();
    let truth = table4::truth_for(attack, effort, &engine);
    let sink = engine.take_observation_sink().expect("sink attached");
    let recorder = sink
        .as_any()
        .downcast_ref::<BeaconRecorder>()
        .expect("recorder type");
    let features: Vec<[f32; NUM_FEATURES]> = recorder
        .features
        .iter()
        .map(|row| {
            let mut out = [0.0f32; NUM_FEATURES];
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o = v as f32;
            }
            out
        })
        .collect();
    let labels: Vec<u8> = recorder
        .meta
        .iter()
        .map(|&(time, sender)| {
            u8::from(time >= truth.start && truth.is_guilty(PrincipalId(sender)))
        })
        .collect();
    CellBlock {
        label: label.to_string(),
        seed,
        features,
        labels,
    }
}

/// Harness job body: one learned-detector scoring run — the trained model
/// standing alone in a pipeline, fused and scored exactly like the stock
/// bank.
pub fn learned_arm(
    attack: &str,
    effort: Effort,
    seed: u64,
    model: LogisticModel,
) -> DetectionSummary {
    let mut engine = engine_for(attack, "learned", effort, seed);
    let detector: Box<dyn Detector> =
        Box::new(LearnedDetector::new(model, LearnedConfig::default()));
    engine.attach_detectors(Pipeline::with_detectors(
        vec![detector],
        FusionConfig::default(),
    ));
    engine.run();
    let truth = table4::truth_for(attack, effort, &engine);
    score_alerts(engine.alerts(), &truth)
}

/// Row-level confusion metrics of the trained model on the test shard at
/// probability threshold 0.5.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalMetrics {
    /// Test rows scored.
    pub rows: u64,
    /// Malicious rows scored ≥ 0.5.
    pub true_positives: u64,
    /// Benign rows scored ≥ 0.5.
    pub false_positives: u64,
    /// Benign rows scored < 0.5.
    pub true_negatives: u64,
    /// Malicious rows scored < 0.5.
    pub false_negatives: u64,
}

impl EvalMetrics {
    /// Fraction of flagged rows that were malicious (NaN when none were
    /// flagged).
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        self.true_positives as f64 / flagged as f64
    }

    /// Fraction of malicious rows that were flagged (NaN when there were
    /// none).
    pub fn recall(&self) -> f64 {
        let malicious = self.true_positives + self.false_negatives;
        self.true_positives as f64 / malicious as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        2.0 * p * r / (p + r)
    }

    /// Fraction of rows classified correctly.
    pub fn accuracy(&self) -> f64 {
        (self.true_positives + self.true_negatives) as f64 / self.rows as f64
    }
}

/// Scores a model over a shard's rows at threshold 0.5.
pub fn evaluate(model: &LogisticModel, shard: &Shard) -> EvalMetrics {
    let mut m = EvalMetrics {
        rows: 0,
        true_positives: 0,
        false_positives: 0,
        true_negatives: 0,
        false_negatives: 0,
    };
    for cell in &shard.cells {
        for (row, &y) in cell.features.iter().zip(&cell.labels) {
            let mut x = [0.0f64; NUM_FEATURES];
            for (o, &v) in x.iter_mut().zip(row.iter()) {
                *o = v as f64;
            }
            let flagged = model.score(&x) >= 0.5;
            m.rows += 1;
            match (flagged, y == 1) {
                (true, true) => m.true_positives += 1,
                (true, false) => m.false_positives += 1,
                (false, false) => m.true_negatives += 1,
                (false, true) => m.false_negatives += 1,
            }
        }
    }
    m
}

/// The full dataset run: shards, the trained model, row-level eval, and
/// the Table IV-style comparison rows.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetReport {
    /// Train split (even seed offsets), grid order.
    pub train: Shard,
    /// Test split (odd seed offsets), grid order.
    pub test: Shard,
    /// The model trained on the train shard.
    pub model: LogisticModel,
    /// Row-level confusion of the model on the test shard.
    pub eval: EvalMetrics,
    /// Table IV-style rows, attack-major, `default` then `learned` per
    /// attack — the head-to-head comparison.
    pub rows: Vec<table4::Table4Row>,
}

/// Phase one alone: runs the export grid and splits it into (train, test)
/// shards by seed offset — even offsets train, odd test. Deterministic for
/// any `workers`.
pub fn export_grid(quick: bool, workers: usize) -> (Shard, Shard) {
    let effort = Effort::new(quick);
    let arms = table4::arm_names();
    let per_cell = seeds_per_cell(quick);

    let mut batch: Batch<CellBlock> = Batch::new(EXPERIMENT_BASE_SEED);
    for attack in &arms {
        for s in 0..per_cell {
            let attack = attack.clone();
            let label = format!("{attack}/s{s}");
            let cell_label = label.clone();
            batch.push_with_seed(label, EXPERIMENT_BASE_SEED + s, move |seed| {
                export_cell(&attack, effort, seed, &cell_label)
            });
        }
    }
    let entries = batch.run(workers);

    let mut train_shard = Shard::default();
    let mut test_shard = Shard::default();
    for (idx, entry) in entries.into_iter().enumerate() {
        let s = idx as u64 % per_cell;
        if s.is_multiple_of(2) {
            train_shard.cells.push(entry.value);
        } else {
            test_shard.cells.push(entry.value);
        }
    }
    (train_shard, test_shard)
}

/// Runs the full dataset pipeline: export grid → split → train → eval →
/// comparison grid. Deterministic for any `workers`.
pub fn run_with(quick: bool, workers: usize) -> DatasetReport {
    let effort = Effort::new(quick);
    let arms = table4::arm_names();
    let (train_shard, test_shard) = export_grid(quick, workers);

    let mut rows_f64: Vec<[f64; NUM_FEATURES]> = Vec::with_capacity(train_shard.rows());
    let mut labels: Vec<u8> = Vec::with_capacity(train_shard.rows());
    for cell in &train_shard.cells {
        for (row, &y) in cell.features.iter().zip(&cell.labels) {
            let mut x = [0.0f64; NUM_FEATURES];
            for (o, &v) in x.iter_mut().zip(row.iter()) {
                *o = v as f64;
            }
            rows_f64.push(x);
            labels.push(y);
        }
    }
    let model = train(&rows_f64, &labels, TrainConfig::default());
    let eval = evaluate(&model, &test_shard);

    let n_seeds = scoring_seeds(quick);
    let mut score_batch: Batch<DetectionSummary> = Batch::new(EXPERIMENT_BASE_SEED);
    for attack in &arms {
        for config in COMPARED_CONFIGS {
            for s in 0..n_seeds {
                let attack = attack.clone();
                let model = model.clone();
                score_batch.push_with_seed(
                    format!("{attack}/{config}/s{s}"),
                    EXPERIMENT_BASE_SEED + s,
                    move |seed| match config {
                        "default" => table4::detection_arm(&attack, "default", effort, seed),
                        _ => learned_arm(&attack, effort, seed, model),
                    },
                );
            }
        }
    }
    let scored = score_batch.run(workers);

    let mut rows = Vec::new();
    let per_arm = n_seeds as usize;
    for (ai, attack) in arms.iter().enumerate() {
        for (ci, config) in COMPARED_CONFIGS.iter().enumerate() {
            let base = (ai * COMPARED_CONFIGS.len() + ci) * per_arm;
            let cells: Vec<DetectionSummary> = scored[base..base + per_arm]
                .iter()
                .map(|e| e.value.clone())
                .collect();
            rows.push(table4::aggregate(attack, config, &cells));
        }
    }

    DatasetReport {
        train: train_shard,
        test: test_shard,
        model,
        eval,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insider_cell_labels_agree_with_truth() {
        let effort = Effort::new(true);
        let seed = EXPERIMENT_BASE_SEED;
        let cell = export_cell("insider-fdi", effort, seed, "insider-fdi/s0");
        assert!(!cell.features.is_empty());
        assert!(
            cell.positives() > 0,
            "the insider's post-start beacons must be labeled malicious"
        );
        assert!(
            cell.positives() < cell.labels.len() as u64,
            "pre-start and honest traffic must stay benign"
        );
        // Re-derive the ground truth independently and check every row:
        // positives are exactly the guilty sender's beacons at or after
        // the attack start.
        let mut engine = engine_for("insider-fdi", "dataset", effort, seed);
        engine.attach_observation_sink(Box::new(BeaconRecorder::default()));
        engine.run();
        let truth = table4::truth_for("insider-fdi", effort, &engine);
        let sink = engine.take_observation_sink().unwrap();
        let recorder = sink.as_any().downcast_ref::<BeaconRecorder>().unwrap();
        assert_eq!(recorder.meta.len(), cell.labels.len());
        for (&label, &(time, sender)) in cell.labels.iter().zip(&recorder.meta) {
            assert_eq!(
                label == 1,
                time >= truth.start && truth.is_guilty(PrincipalId(sender)),
                "row label disagrees with TruthLabels at t={time} sender={sender}"
            );
        }
    }

    #[test]
    fn benign_cell_has_no_positive_rows() {
        let cell = export_cell(
            "benign",
            Effort::new(true),
            EXPERIMENT_BASE_SEED + 1,
            "benign/s1",
        );
        assert!(!cell.features.is_empty());
        assert_eq!(cell.positives(), 0, "a benign run has nothing to convict");
    }

    #[test]
    fn eval_metrics_count_the_confusion_quadrants() {
        // A hand-built model whose score depends only on feature 0:
        // standardized identity, weight 1, bias 0 → flagged iff x0 > 0.
        let mut model = LogisticModel {
            weights: [0.0; NUM_FEATURES],
            bias: 0.0,
            mean: [0.0; NUM_FEATURES],
            scale: [1.0; NUM_FEATURES],
        };
        model.weights[0] = 1.0;
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (x0, y) in [(2.0f32, 1u8), (3.0, 0), (-2.0, 0), (-3.0, 1)] {
            let mut row = [0.0f32; NUM_FEATURES];
            row[0] = x0;
            features.push(row);
            labels.push(y);
        }
        let shard = Shard {
            cells: vec![CellBlock {
                label: "toy/s0".into(),
                seed: 0,
                features,
                labels,
            }],
        };
        let m = evaluate(&model, &shard);
        assert_eq!(
            (
                m.true_positives,
                m.false_positives,
                m.true_negatives,
                m.false_negatives
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(m.rows, 4);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.accuracy(), 0.5);
    }
}
