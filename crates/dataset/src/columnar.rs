//! The columnar binary shard format.
//!
//! A shard is a self-describing single file:
//!
//! ```text
//! magic            8 bytes   b"PLTDSET1"
//! header_len       u32 LE
//! header           canonical compact JSON: format tag, feature names,
//!                  total row count, per-cell provenance
//!                  (label, seed, rows, positives)
//! feature columns  NUM_FEATURES columns × rows × f32 LE, column-major
//! cell column      rows × u32 LE (index into the header's cell list)
//! label column     rows × u8 (0 benign, 1 malicious)
//! digest           u64 LE — FNV-1a over every preceding byte
//! ```
//!
//! Column-major `f32` keeps corridor-scale exports compact (one byte per
//! label, four per feature) and streaming-friendly; the canonical header
//! plus trailing digest make byte-identity across worker counts checkable
//! with a plain `cmp`.

use platoon_detect::features::{FEATURE_NAMES, NUM_FEATURES};
use platoon_sim::harness::json;

/// Leading magic bytes of every shard.
pub const MAGIC: &[u8; 8] = b"PLTDSET1";

/// FNV-1a over a byte stream — the same digest family the job server's
/// content-addressed cache keys use.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One export cell's rows: a single (attack arm, seed) run.
#[derive(Clone, Debug, PartialEq)]
pub struct CellBlock {
    /// Cell label (`attack/s<idx>`), unique within a shard.
    pub label: String,
    /// The engine seed the cell ran under.
    pub seed: u64,
    /// Per-beacon feature rows, arrival order, `f32`-rounded exactly as
    /// they are stored on disk.
    pub features: Vec<[f32; NUM_FEATURES]>,
    /// Per-row truth labels (0 benign, 1 malicious), row-aligned.
    pub labels: Vec<u8>,
}

impl CellBlock {
    /// Malicious rows in this cell.
    pub fn positives(&self) -> u64 {
        self.labels.iter().filter(|&&l| l == 1).count() as u64
    }
}

/// An ordered collection of cells — one train or test split.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Shard {
    /// Cells in grid submission order.
    pub cells: Vec<CellBlock>,
}

impl Shard {
    /// Total rows across cells.
    pub fn rows(&self) -> usize {
        self.cells.iter().map(|c| c.features.len()).sum()
    }

    /// Total malicious rows across cells.
    pub fn positives(&self) -> u64 {
        self.cells.iter().map(|c| c.positives()).sum()
    }

    /// Encodes the shard into its canonical byte representation,
    /// including the trailing digest.
    pub fn encode(&self) -> Vec<u8> {
        let rows = self.rows();
        let mut w = json::Writer::compact();
        w.obj(|w| {
            w.field_str("format", "platoon-dataset-v1");
            w.field_arr("features", |w| {
                for name in FEATURE_NAMES {
                    w.elem(|w| w.push_str(name));
                }
            });
            w.field_u64("rows", rows as u64);
            w.field_arr("cells", |w| {
                for cell in &self.cells {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("label", &cell.label);
                            w.field_u64("seed", cell.seed);
                            w.field_u64("rows", cell.features.len() as u64);
                            w.field_u64("positives", cell.positives());
                        })
                    });
                }
            });
        });
        let header = w.finish();
        let mut out = Vec::with_capacity(
            MAGIC.len() + 4 + header.len() + rows * (4 * NUM_FEATURES + 4 + 1) + 8,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(header.as_bytes());
        for col in 0..NUM_FEATURES {
            for cell in &self.cells {
                for row in &cell.features {
                    out.extend_from_slice(&row[col].to_le_bytes());
                }
            }
        }
        for (ci, cell) in self.cells.iter().enumerate() {
            for _ in 0..cell.features.len() {
                out.extend_from_slice(&(ci as u32).to_le_bytes());
            }
        }
        for cell in &self.cells {
            out.extend_from_slice(&cell.labels);
        }
        let digest = fnv1a(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// The digest an encode of this shard carries (recomputed).
    pub fn digest(&self) -> u64 {
        let encoded = self.encode();
        u64::from_le_bytes(encoded[encoded.len() - 8..].try_into().unwrap())
    }

    /// Decodes and fully verifies a shard: magic, header, column sizes and
    /// the trailing digest.
    pub fn decode(bytes: &[u8]) -> Result<Shard, String> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err("shard truncated".into());
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err("bad magic".into());
        }
        let (body, digest_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(digest_bytes.try_into().unwrap());
        let computed = fnv1a(body);
        if stored != computed {
            return Err(format!(
                "digest mismatch: stored {stored:#x}, computed {computed:#x}"
            ));
        }
        let mut pos = MAGIC.len();
        let header_len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if body.len() < pos + header_len {
            return Err("header truncated".into());
        }
        let header_text = std::str::from_utf8(&body[pos..pos + header_len])
            .map_err(|e| format!("header not UTF-8: {e}"))?;
        pos += header_len;
        let header = json::parse(header_text)?;
        let cells_meta = match header.get("cells") {
            Some(json::Value::Arr(cells)) => cells,
            _ => return Err("header missing cells".into()),
        };
        let total_rows = header
            .get("rows")
            .and_then(|v| v.as_f64())
            .ok_or("header missing rows")? as usize;
        let mut cells: Vec<CellBlock> = Vec::with_capacity(cells_meta.len());
        for meta in cells_meta {
            let label = match meta.get("label") {
                Some(json::Value::Str(s)) => s.clone(),
                _ => return Err("cell missing label".into()),
            };
            let seed = meta
                .get("seed")
                .and_then(|v| v.as_f64())
                .ok_or("cell missing seed")?;
            let rows = meta
                .get("rows")
                .and_then(|v| v.as_f64())
                .ok_or("cell missing rows")?;
            cells.push(CellBlock {
                label,
                seed: seed as u64,
                features: vec![[0.0; NUM_FEATURES]; rows as usize],
                labels: vec![0; rows as usize],
            });
        }
        if cells.iter().map(|c| c.features.len()).sum::<usize>() != total_rows {
            return Err("cell row counts do not sum to the header total".into());
        }
        let payload = total_rows * (4 * NUM_FEATURES + 4 + 1);
        if body.len() != pos + payload {
            return Err(format!(
                "payload size mismatch: have {}, expected {payload}",
                body.len() - pos
            ));
        }
        for col in 0..NUM_FEATURES {
            for cell in &mut cells {
                for row in &mut cell.features {
                    row[col] = f32::from_le_bytes(body[pos..pos + 4].try_into().unwrap());
                    pos += 4;
                }
            }
        }
        for (ci, cell) in cells.iter().enumerate() {
            for _ in 0..cell.features.len() {
                let stored_ci = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap());
                pos += 4;
                if stored_ci as usize != ci {
                    return Err("cell column does not match header order".into());
                }
            }
        }
        for cell in &mut cells {
            let n = cell.labels.len();
            cell.labels.copy_from_slice(&body[pos..pos + n]);
            pos += n;
        }
        Ok(Shard { cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Shard {
        let mut cells = Vec::new();
        for (ci, label) in ["benign/s0", "sybil/s1"].iter().enumerate() {
            let mut features = Vec::new();
            let mut labels = Vec::new();
            for r in 0..17u32 {
                let mut row = [0.0f32; NUM_FEATURES];
                for (fi, f) in row.iter_mut().enumerate() {
                    *f = (ci as f32 + 1.0) * (r as f32 * 0.5 + fi as f32);
                }
                features.push(row);
                labels.push(u8::from(ci == 1 && r % 3 == 0));
            }
            cells.push(CellBlock {
                label: label.to_string(),
                seed: 2021 + ci as u64,
                features,
                labels,
            });
        }
        Shard { cells }
    }

    #[test]
    fn encode_decode_round_trips() {
        let shard = sample();
        let bytes = shard.encode();
        assert_eq!(&bytes[..8], MAGIC);
        let back = Shard::decode(&bytes).expect("decode");
        assert_eq!(back, shard);
        assert_eq!(back.rows(), 34);
        assert_eq!(back.positives(), 6);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn corruption_is_caught_by_the_digest() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = Shard::decode(&bytes).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().encode();
        assert!(Shard::decode(&bytes[..bytes.len() - 9]).is_err());
        assert!(Shard::decode(&bytes[..4]).is_err());
    }
}
