//! # platoon-faults
//!
//! First-class **benign fault injection** for the platoon simulator.
//!
//! The paper's open challenges (§VI-B) ask how platoon security mechanisms
//! behave under *realistic degraded conditions* — rain fade, flaky sensors,
//! infrastructure outages — not just on clean channels. Ghosh et al.'s
//! detection-isolation work sharpens the point: a detector that cannot tell
//! a benign fault from an attack is operationally useless. This crate turns
//! what used to be ad-hoc `Attack`-trait hacks in the integration tests into
//! a composable subsystem, so any experiment cell can run
//! attack × defense × fault.
//!
//! * [`FaultWindow`] — a half-open `[start, end)` activity interval.
//! * [`faults`] — the concrete taxonomy: [`BurstPacketLoss`],
//!   [`NoiseFloorRamp`], [`SensorOutage`], [`ClockSkew`], [`RsuBlackout`].
//!   Every fault is *scoped*: whatever world state it overwrites is saved
//!   and guaranteed restored, either when its window closes or at
//!   end-of-run via [`Fault::restore`].
//! * [`schedule`] — [`FaultSchedule`]: a deterministic, seed-derived mix of
//!   the above, installable on an [`Engine`](platoon_sim::prelude::Engine)
//!   in one call. Same seed, same schedule — batch grids stay worker-count
//!   invariant.
//!
//! The [`Fault`] hook trait itself lives in [`platoon_sim::fault`] (so the
//! engine can host faults without a dependency cycle) and is re-exported
//! here.
//!
//! # Examples
//!
//! ```
//! use platoon_faults::{BurstPacketLoss, FaultWindow};
//! use platoon_sim::prelude::*;
//!
//! let scenario = Scenario::builder()
//!     .label("rain-fade")
//!     .vehicles(5)
//!     .duration(20.0)
//!     .build();
//! let mut engine = Engine::new(scenario);
//! engine.add_fault(Box::new(BurstPacketLoss::new(
//!     vec![FaultWindow::new(5.0, 10.0)],
//!     25.0,
//! )));
//! let summary = engine.run();
//! assert_eq!(summary.collisions, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod schedule;
pub mod window;

pub use faults::{
    BurstPacketLoss, ChannelTarget, ClockSkew, NoiseFloorRamp, RsuBlackout, SensorChannel,
    SensorOutage,
};
pub use platoon_sim::fault::{Fault, NoFault};
pub use schedule::FaultSchedule;
pub use window::FaultWindow;
