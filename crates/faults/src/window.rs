//! Activity windows for scheduled faults.

/// A half-open activity interval `[start, end)` in simulation seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// First instant (inclusive) the fault is active.
    pub start: f64,
    /// First instant (exclusive) the fault is no longer active.
    pub end: f64,
}

impl FaultWindow {
    /// Creates a window; `end` is clamped to at least `start`.
    pub fn new(start: f64, end: f64) -> Self {
        FaultWindow {
            start,
            end: end.max(start),
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Whether any window in a schedule covers `t`.
pub(crate) fn any_active(windows: &[FaultWindow], t: f64) -> bool {
    windows.iter().any(|w| w.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open_and_clamped() {
        let w = FaultWindow::new(2.0, 5.0);
        assert!(!w.contains(1.999));
        assert!(w.contains(2.0));
        assert!(w.contains(4.999));
        assert!(!w.contains(5.0));
        assert_eq!(w.duration(), 3.0);
        let degenerate = FaultWindow::new(4.0, 1.0);
        assert_eq!(degenerate.duration(), 0.0, "end clamps to start");
        assert!(!degenerate.contains(4.0));
    }
}
