//! The concrete benign-fault taxonomy.
//!
//! Every fault here is **scoped**: it tracks exactly what it changed in the
//! world and undoes it, either when its activity window closes or — if the
//! run ends mid-window — in [`Fault::restore`], which
//! [`Engine::run`](platoon_sim::prelude::Engine::run) calls after the step
//! loop. Channel faults apply *deltas* to the noise floor rather than
//! overwriting it, so they compose with jamming attacks and with each other.

use crate::window::{any_active, FaultWindow};
use platoon_dynamics::sensors::SensorFault;
use platoon_sim::fault::Fault;
use platoon_sim::world::{Rsu, World};
use platoon_v2x::vlc::VLC_OUTAGE_PER_DB;
use std::any::Any;

/// Which physical channel(s) a channel-degradation fault touches.
///
/// Weather fronts and interference degrade every active medium, not just
/// 802.11p — a hybrid DSRC+VLC platoon driving into fog loses both the RF
/// link *and* the optical one. The default therefore hits all media; the
/// narrow variants exist for experiments that isolate one channel (e.g. a
/// jammer study that must leave the VLC fallback clean).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChannelTarget {
    /// Every active medium: the DSRC noise floor plus the VLC
    /// ambient-outage rate ([`VLC_OUTAGE_PER_DB`] per dB).
    #[default]
    All,
    /// 802.11p only (the historical behaviour).
    DsrcOnly,
    /// The optical channel only.
    VlcOnly,
}

impl ChannelTarget {
    /// Whether the target includes the DSRC channel.
    pub fn hits_dsrc(self) -> bool {
        matches!(self, ChannelTarget::All | ChannelTarget::DsrcOnly)
    }

    /// Whether the target includes the VLC channel.
    pub fn hits_vlc(self) -> bool {
        matches!(self, ChannelTarget::All | ChannelTarget::VlcOnly)
    }
}

/// Rain-fade style burst packet loss: raises the DSRC noise floor by a fixed
/// number of dB while any window is active.
#[derive(Clone, Debug)]
pub struct BurstPacketLoss {
    windows: Vec<FaultWindow>,
    extra_noise_dbm: f64,
    applied: bool,
}

impl BurstPacketLoss {
    /// A burst-loss fault active during `windows`, adding `extra_noise_dbm`
    /// (typically 15–30 dB: enough to drop most frames at platoon ranges).
    pub fn new(windows: Vec<FaultWindow>, extra_noise_dbm: f64) -> Self {
        BurstPacketLoss {
            windows,
            extra_noise_dbm,
            applied: false,
        }
    }
}

impl Fault for BurstPacketLoss {
    fn name(&self) -> &'static str {
        "burst-loss"
    }

    fn apply(&mut self, world: &mut World, now: f64) {
        let active = any_active(&self.windows, now);
        if active && !self.applied {
            world.medium.dsrc.noise_floor_dbm += self.extra_noise_dbm;
            self.applied = true;
        } else if !active && self.applied {
            world.medium.dsrc.noise_floor_dbm -= self.extra_noise_dbm;
            self.applied = false;
        }
    }

    fn restore(&mut self, world: &mut World) {
        if self.applied {
            world.medium.dsrc.noise_floor_dbm -= self.extra_noise_dbm;
            self.applied = false;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Fault>> {
        Some(Box::new(self.clone()))
    }
}

/// A slow channel degradation: the noise environment climbs linearly from
/// `start` at `rate_db_per_s`, capped at `cap_db` above its base value.
/// The dB figure raises the DSRC noise floor directly and — unless a
/// narrower [`ChannelTarget`] is selected — degrades the optical channel
/// too, at [`VLC_OUTAGE_PER_DB`] ambient-outage probability per dB (the
/// optical link has no RF noise floor to raise).
///
/// Models the gradual onsets (weather fronts, growing interference) that
/// threshold detectors confuse with low-power jamming.
#[derive(Clone, Debug)]
pub struct NoiseFloorRamp {
    start: f64,
    rate_db_per_s: f64,
    cap_db: f64,
    target: ChannelTarget,
    applied_db: f64,
    applied_outage: f64,
}

impl NoiseFloorRamp {
    /// A ramp beginning at `start` seconds, climbing `rate_db_per_s` up to
    /// `cap_db` total, degrading every active medium.
    pub fn new(start: f64, rate_db_per_s: f64, cap_db: f64) -> Self {
        NoiseFloorRamp {
            start,
            rate_db_per_s,
            cap_db,
            target: ChannelTarget::default(),
            applied_db: 0.0,
            applied_outage: 0.0,
        }
    }

    /// Narrows the ramp to specific channel(s).
    pub fn targeting(mut self, target: ChannelTarget) -> Self {
        self.target = target;
        self
    }
}

impl Fault for NoiseFloorRamp {
    fn name(&self) -> &'static str {
        "noise-ramp"
    }

    fn apply(&mut self, world: &mut World, now: f64) {
        let target_db = if now < self.start {
            0.0
        } else {
            (self.rate_db_per_s * (now - self.start)).clamp(0.0, self.cap_db)
        };
        if self.target.hits_dsrc() {
            world.medium.dsrc.noise_floor_dbm += target_db - self.applied_db;
            self.applied_db = target_db;
        }
        if self.target.hits_vlc() {
            let outage = target_db * VLC_OUTAGE_PER_DB;
            world.medium.vlc.ambient_outage_prob += outage - self.applied_outage;
            self.applied_outage = outage;
        }
    }

    fn restore(&mut self, world: &mut World) {
        world.medium.dsrc.noise_floor_dbm -= self.applied_db;
        self.applied_db = 0.0;
        world.medium.vlc.ambient_outage_prob -= self.applied_outage;
        self.applied_outage = 0.0;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Fault>> {
        Some(Box::new(self.clone()))
    }
}

/// Which on-board sensor a [`SensorOutage`] silences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SensorChannel {
    /// The forward radar.
    Radar,
    /// The GPS receiver.
    Gps,
    /// The forward LiDAR.
    Lidar,
}

/// A scoped sensor outage: one vehicle's sensor reads nothing while any
/// window is active.
///
/// Unlike the old test-local `RadarFlaker` hack, the outage *saves whatever
/// fault state the sensor already carried* (e.g. a bias injected by an
/// attack) and puts it back when the window closes — or at end-of-run if
/// the run stops mid-window — so no fault state ever leaks out of the run.
#[derive(Clone, Debug)]
pub struct SensorOutage {
    vehicle: usize,
    channel: SensorChannel,
    windows: Vec<FaultWindow>,
    saved: Option<SensorFault>,
}

impl SensorOutage {
    /// An outage of `vehicle`'s `channel` sensor during `windows`.
    pub fn new(vehicle: usize, channel: SensorChannel, windows: Vec<FaultWindow>) -> Self {
        SensorOutage {
            vehicle,
            channel,
            windows,
            saved: None,
        }
    }

    /// Convenience: a radar outage (the common degraded-sensing case).
    pub fn radar(vehicle: usize, windows: Vec<FaultWindow>) -> Self {
        SensorOutage::new(vehicle, SensorChannel::Radar, windows)
    }

    fn slot<'w>(&self, world: &'w mut World) -> Option<&'w mut SensorFault> {
        let v = world.vehicles.get_mut(self.vehicle)?;
        Some(match self.channel {
            SensorChannel::Radar => &mut v.sensors.radar.fault,
            SensorChannel::Gps => &mut v.sensors.gps.fault,
            SensorChannel::Lidar => &mut v.sensors.lidar.fault,
        })
    }
}

impl Fault for SensorOutage {
    fn name(&self) -> &'static str {
        "sensor-outage"
    }

    fn apply(&mut self, world: &mut World, now: f64) {
        let active = any_active(&self.windows, now);
        let saved = self.saved;
        let Some(slot) = self.slot(world) else { return };
        if active && saved.is_none() {
            self.saved = Some(*slot);
            *slot = SensorFault::Outage;
        } else if !active {
            if let Some(prior) = saved {
                *slot = prior;
                self.saved = None;
            }
        }
    }

    fn restore(&mut self, world: &mut World) {
        let saved = self.saved;
        if let (Some(prior), Some(slot)) = (saved, self.slot(world)) {
            *slot = prior;
            self.saved = None;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Fault>> {
        Some(Box::new(self.clone()))
    }
}

/// A drifting local clock: from `start` on, the victim perceives stored
/// beacons as progressively older (its receive timestamps age at
/// `skew_s_per_s` extra seconds per simulated second).
///
/// Degrades communication *freshness* without touching the channel — the
/// failure mode that trips beacon-age plausibility checks. The mutation is
/// transient (fresh beacons overwrite the stored state every step), so
/// there is nothing to undo at end-of-run.
#[derive(Clone, Debug)]
pub struct ClockSkew {
    vehicle: usize,
    start: f64,
    skew_s_per_s: f64,
    last_now: Option<f64>,
}

impl ClockSkew {
    /// A clock-skew fault on `vehicle` beginning at `start` seconds.
    pub fn new(vehicle: usize, start: f64, skew_s_per_s: f64) -> Self {
        ClockSkew {
            vehicle,
            start,
            skew_s_per_s,
            last_now: None,
        }
    }
}

impl Fault for ClockSkew {
    fn name(&self) -> &'static str {
        "clock-skew"
    }

    fn apply(&mut self, world: &mut World, now: f64) {
        if now < self.start {
            return;
        }
        let dt = self.last_now.map_or(0.0, |t| (now - t).max(0.0));
        self.last_now = Some(now);
        if dt <= 0.0 {
            return;
        }
        let shift = self.skew_s_per_s * dt;
        if let Some(v) = world.vehicles.get_mut(self.vehicle) {
            if let Some(h) = v.comm.predecessor.as_mut() {
                h.heard_at -= shift;
            }
            if let Some(h) = v.comm.leader.as_mut() {
                h.heard_at -= shift;
            }
        }
    }

    fn restore(&mut self, _world: &mut World) {
        // Nothing to undo: the backdating is transient (fresh beacons
        // overwrite the stored timestamps every step). Critically,
        // `last_now` must survive restore — `restore_faults` may run
        // mid-run (manual steppers, snapshot bookkeeping), and resetting
        // the reference would swallow one tick's worth of skew on the
        // next `apply`, diverging a restored-then-stepped run from an
        // uninterrupted one.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Fault>> {
        Some(Box::new(self.clone()))
    }
}

/// An infrastructure power cut: every RSU disappears from the world while a
/// window is active and reappears — exactly as it was — afterwards.
#[derive(Clone, Debug)]
pub struct RsuBlackout {
    windows: Vec<FaultWindow>,
    saved: Option<Vec<Rsu>>,
}

impl RsuBlackout {
    /// A blackout of all RSUs during `windows`.
    pub fn new(windows: Vec<FaultWindow>) -> Self {
        RsuBlackout {
            windows,
            saved: None,
        }
    }
}

impl Fault for RsuBlackout {
    fn name(&self) -> &'static str {
        "rsu-blackout"
    }

    fn apply(&mut self, world: &mut World, now: f64) {
        let active = any_active(&self.windows, now);
        if active && self.saved.is_none() {
            self.saved = Some(std::mem::take(&mut world.rsus));
        } else if !active {
            if let Some(rsus) = self.saved.take() {
                world.rsus = rsus;
            }
        }
    }

    fn restore(&mut self, world: &mut World) {
        if let Some(rsus) = self.saved.take() {
            world.rsus = rsus;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Fault>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn quick(label: &str) -> ScenarioBuilder {
        Scenario::builder()
            .label(label)
            .vehicles(5)
            .duration(20.0)
            .seed(31)
    }

    /// Channel faults restore by subtracting the delta they added, so the
    /// floor comes back to within FP rounding (~1e-13 dB), not bit-exactly.
    fn assert_close(a: f64, b: f64, what: &str) {
        assert!((a - b).abs() < 1e-9, "{what}: {a} vs {b}");
    }

    #[test]
    fn burst_loss_drops_frames_then_hands_the_channel_back() {
        let clean = Engine::new(quick("burst").build()).run();
        let mut engine = Engine::new(quick("burst").build());
        let clean_floor = engine.world().medium.dsrc.noise_floor_dbm;
        engine.add_fault(Box::new(BurstPacketLoss::new(
            vec![FaultWindow::new(5.0, 12.0)],
            25.0,
        )));
        let faulty = engine.run();
        assert!(
            faulty.leader_tail_pdr < clean.leader_tail_pdr,
            "a 25 dB burst must cost deliveries: {} !< {}",
            faulty.leader_tail_pdr,
            clean.leader_tail_pdr
        );
        assert_close(
            engine.world().medium.dsrc.noise_floor_dbm,
            clean_floor,
            "noise floor restored after the window",
        );
        assert_eq!(faulty.collisions, 0, "benign faults must not crash trucks");
    }

    #[test]
    fn burst_loss_restores_even_when_the_run_ends_mid_window() {
        let mut engine = Engine::new(quick("burst-open").build());
        let clean_floor = engine.world().medium.dsrc.noise_floor_dbm;
        // Window extends past the end of the run: only `restore` can undo it.
        engine.add_fault(Box::new(BurstPacketLoss::new(
            vec![FaultWindow::new(5.0, 1e9)],
            25.0,
        )));
        engine.run();
        assert_close(
            engine.world().medium.dsrc.noise_floor_dbm,
            clean_floor,
            "end-of-run restore closes the still-open window",
        );
    }

    #[test]
    fn noise_ramp_degrades_gradually_and_restores() {
        let mut engine = Engine::new(quick("ramp").build());
        let clean_floor = engine.world().medium.dsrc.noise_floor_dbm;
        engine.add_fault(Box::new(NoiseFloorRamp::new(2.0, 1.0, 14.0)));
        for _ in 0..60 {
            engine.step();
        }
        let mid = engine.world().medium.dsrc.noise_floor_dbm - clean_floor;
        assert!(
            (3.0..=4.1).contains(&mid),
            "at t=6s a 1 dB/s ramp from t=2s sits near +4 dB, got {mid}"
        );
        for _ in 0..140 {
            engine.step();
        }
        let late = engine.world().medium.dsrc.noise_floor_dbm - clean_floor;
        assert!((13.9..=14.1).contains(&late), "cap reached, got {late}");
        engine.restore_faults();
        assert_close(
            engine.world().medium.dsrc.noise_floor_dbm,
            clean_floor,
            "ramp contribution removed",
        );
    }

    #[test]
    fn sensor_outage_saves_and_restores_prior_fault_state() {
        use platoon_dynamics::sensors::SensorFault;
        let mut engine = Engine::new(quick("outage").build());
        // The victim's radar already carries a bias (say, from an attack or
        // a prior fault): the outage must not erase it.
        engine.world_mut().vehicles[2].sensors.radar.fault = SensorFault::Bias { offset: 0.7 };
        engine.add_fault(Box::new(SensorOutage::radar(
            2,
            vec![FaultWindow::new(4.0, 9.0)],
        )));
        // Step into the window.
        for _ in 0..50 {
            engine.step();
        }
        assert_eq!(
            engine.world().vehicles[2].sensors.radar.fault,
            SensorFault::Outage,
            "outage active inside the window"
        );
        // Step past the window close.
        for _ in 0..50 {
            engine.step();
        }
        assert_eq!(
            engine.world().vehicles[2].sensors.radar.fault,
            SensorFault::Bias { offset: 0.7 },
            "the pre-existing fault state comes back"
        );
    }

    #[test]
    fn sensor_outage_restores_when_the_run_ends_mid_window() {
        use platoon_dynamics::sensors::SensorFault;
        let mut engine = Engine::new(quick("outage-open").build());
        engine.add_fault(Box::new(SensorOutage::radar(
            3,
            vec![FaultWindow::new(4.0, 1e9)],
        )));
        let summary = engine.run();
        assert_eq!(
            engine.world().vehicles[3].sensors.radar.fault,
            SensorFault::None,
            "end-of-run restore closes the still-open window"
        );
        assert_eq!(summary.collisions, 0);
    }

    #[test]
    fn clock_skew_backdates_stored_beacons() {
        let mut engine = Engine::new(quick("skew-mech").build());
        let victim = engine.world().vehicles.len() - 1;
        // Let the platoon exchange beacons so the tail has a stored leader.
        for _ in 0..50 {
            engine.step();
        }
        let before = engine.world().vehicles[victim]
            .comm
            .leader
            .expect("tail heard the leader")
            .heard_at;
        let now = engine.world().time;
        let mut skew = ClockSkew::new(victim, 0.0, 2.0);
        skew.apply(engine.world_mut(), now); // establishes the reference
        skew.apply(engine.world_mut(), now + 0.1);
        let after = engine.world().vehicles[victim]
            .comm
            .leader
            .unwrap()
            .heard_at;
        assert_close(before - after, 0.2, "2 s/s over 0.1 s backdates 0.2 s");
    }

    #[test]
    fn clock_skew_amplifies_staleness_under_loss() {
        // On a clean channel fresh beacons overwrite the backdated state
        // every step, so skew alone is invisible; during an outage the
        // stored beacon is all the victim has, and its perceived age must
        // grow faster than real time.
        let burst = || BurstPacketLoss::new(vec![FaultWindow::new(5.0, 13.0)], 30.0);
        let mut lossy = Engine::new(quick("skew-loss").build());
        lossy.add_fault(Box::new(burst()));
        let lossy = lossy.run();
        let mut skewed = Engine::new(quick("skew-loss").build());
        skewed.add_fault(Box::new(burst()));
        let victim = skewed.world().vehicles.len() - 1;
        skewed.add_fault(Box::new(ClockSkew::new(victim, 0.0, 3.0)));
        let skewed = skewed.run();
        assert!(
            skewed.tail_leader_age_mean > lossy.tail_leader_age_mean,
            "skew must age the tail's leader view beyond the outage alone: {} !> {}",
            skewed.tail_leader_age_mean,
            lossy.tail_leader_age_mean
        );
        assert_eq!(skewed.collisions, 0);
    }

    #[test]
    fn noise_ramp_degrades_the_vlc_channel_in_hybrid_scenarios() {
        // The ramp historically raised only the DSRC floor, so a hybrid
        // platoon sailed through weather on a pristine optical channel.
        let clean = Engine::new(quick("ramp-hybrid").comms(CommsMode::HybridVlc).build()).run();
        let mut engine = Engine::new(quick("ramp-hybrid").comms(CommsMode::HybridVlc).build());
        let base_outage = engine.world().medium.vlc.ambient_outage_prob;
        engine.add_fault(Box::new(NoiseFloorRamp::new(2.0, 2.0, 20.0)));
        for _ in 0..150 {
            engine.step();
        }
        let applied = engine.world().medium.vlc.ambient_outage_prob - base_outage;
        assert_close(
            applied,
            20.0 * platoon_v2x::vlc::VLC_OUTAGE_PER_DB,
            "at the cap the VLC outage carries the full dB mapping",
        );
        engine.restore_faults();
        assert_close(
            engine.world().medium.vlc.ambient_outage_prob,
            base_outage,
            "VLC contribution removed",
        );
        let mut faulty = Engine::new(quick("ramp-hybrid").comms(CommsMode::HybridVlc).build());
        faulty.add_fault(Box::new(NoiseFloorRamp::new(2.0, 2.0, 20.0)));
        let faulty = faulty.run();
        assert!(
            faulty.leader_tail_pdr < clean.leader_tail_pdr,
            "a 20 dB ramp must cost deliveries even with the optical fallback: {} !< {}",
            faulty.leader_tail_pdr,
            clean.leader_tail_pdr
        );
    }

    #[test]
    fn noise_ramp_can_be_narrowed_to_a_single_channel() {
        let mut engine = Engine::new(quick("ramp-dsrc").comms(CommsMode::HybridVlc).build());
        let base_floor = engine.world().medium.dsrc.noise_floor_dbm;
        let base_outage = engine.world().medium.vlc.ambient_outage_prob;
        engine.add_fault(Box::new(
            NoiseFloorRamp::new(0.0, 5.0, 10.0).targeting(ChannelTarget::DsrcOnly),
        ));
        for _ in 0..100 {
            engine.step();
        }
        assert!(
            engine.world().medium.dsrc.noise_floor_dbm > base_floor + 9.0,
            "DSRC floor raised"
        );
        assert_eq!(
            engine.world().medium.vlc.ambient_outage_prob,
            base_outage,
            "a DSRC-only ramp leaves the optical channel untouched"
        );
        engine.restore_faults();
        assert_close(
            engine.world().medium.dsrc.noise_floor_dbm,
            base_floor,
            "floor restored",
        );
    }

    #[test]
    fn restore_is_idempotent_and_safe_to_step_after() {
        // `restore_faults` may run mid-run (manual steppers, snapshot
        // bookkeeping). Re-applying after a restore — or restoring twice —
        // must behave exactly like an uninterrupted run.
        let victim = 4;
        let build = || {
            let mut engine = Engine::new(quick("restore-mid").build());
            engine.add_fault(Box::new(ClockSkew::new(victim, 0.0, 3.0)));
            engine.add_fault(Box::new(SensorOutage::radar(
                2,
                vec![FaultWindow::new(4.0, 1e9)],
            )));
            engine.add_fault(Box::new(BurstPacketLoss::new(
                vec![FaultWindow::new(5.0, 13.0)],
                30.0,
            )));
            engine
        };
        let mut straight = build();
        let straight = straight.run();

        let mut interrupted = build();
        for _ in 0..80 {
            interrupted.step();
        }
        interrupted.restore_faults();
        interrupted.restore_faults(); // double restore must be a no-op
        let interrupted = interrupted.run();

        assert_eq!(
            straight, interrupted,
            "mid-run restore_faults must not perturb the rest of the run"
        );
    }

    #[test]
    fn rsu_blackout_removes_and_restores_infrastructure() {
        let scenario = quick("blackout")
            .rsu((150.0, 8.0))
            .rsu((450.0, 8.0))
            .build();
        let mut engine = Engine::new(scenario);
        let before = engine.world().rsus.clone();
        assert_eq!(before.len(), 2);
        engine.add_fault(Box::new(RsuBlackout::new(vec![FaultWindow::new(3.0, 1e9)])));
        for _ in 0..40 {
            engine.step();
        }
        assert!(
            engine.world().rsus.is_empty(),
            "all RSUs dark during the blackout"
        );
        engine.restore_faults();
        let after = engine.world().rsus.clone();
        assert_eq!(after.len(), 2, "infrastructure restored");
        assert_eq!(after[0].node, before[0].node);
        assert_eq!(after[1].position, before[1].position);
    }
}
