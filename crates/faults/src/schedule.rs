//! Deterministic, seed-derived fault schedules.

use crate::faults::{
    BurstPacketLoss, ClockSkew, NoiseFloorRamp, RsuBlackout, SensorChannel, SensorOutage,
};
use crate::window::FaultWindow;
use platoon_sim::fault::Fault;
use platoon_sim::prelude::Engine;

/// One SplitMix64 draw (the same generator family the harness uses for seed
/// derivation — no `rand` dependency, bit-identical everywhere).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// 1–2 windows with starts in the first 70% of the run and lengths of
/// 5–20% of it.
fn draw_windows(state: &mut u64, duration: f64) -> Vec<FaultWindow> {
    let count = 1 + (splitmix64(state) % 2) as usize;
    (0..count)
        .map(|_| {
            let start = unit(state) * 0.7 * duration;
            let len = (0.05 + 0.15 * unit(state)) * duration;
            FaultWindow::new(start, start + len)
        })
        .collect()
}

/// A deterministic, seed-derived mix of benign faults.
///
/// `FaultSchedule::from_seed` maps **any** `u64` to a valid schedule — the
/// property-test surface — drawing which fault kinds are present, their
/// windows and their magnitudes from an internal SplitMix64 stream. Two
/// schedules built from the same `(seed, duration, vehicles)` triple are
/// identical, so fault grids inherit the harness's worker-count invariance.
#[derive(Debug, Default)]
pub struct FaultSchedule {
    faults: Vec<Box<dyn Fault>>,
}

impl FaultSchedule {
    /// An empty schedule to [`push`](Self::push) faults onto manually.
    pub fn new() -> Self {
        FaultSchedule { faults: Vec::new() }
    }

    /// Derives a schedule from a seed for a run of `duration` seconds with
    /// `vehicles` trucks. Always contains at least one fault.
    pub fn from_seed(seed: u64, duration: f64, vehicles: usize) -> Self {
        let mut state = seed ^ 0xFA17_5EED_0000_0001;
        let mut schedule = FaultSchedule::new();

        if unit(&mut state) < 0.5 {
            let windows = draw_windows(&mut state, duration);
            let extra = 15.0 + 15.0 * unit(&mut state);
            schedule.push(Box::new(BurstPacketLoss::new(windows, extra)));
        }
        if unit(&mut state) < 0.5 {
            let start = unit(&mut state) * 0.5 * duration;
            let rate = 0.2 + 0.8 * unit(&mut state);
            let cap = 8.0 + 8.0 * unit(&mut state);
            schedule.push(Box::new(NoiseFloorRamp::new(start, rate, cap)));
        }
        if unit(&mut state) < 0.5 && vehicles >= 2 {
            let victim = 1 + (splitmix64(&mut state) as usize) % (vehicles - 1);
            let channel = match splitmix64(&mut state) % 3 {
                0 => SensorChannel::Radar,
                1 => SensorChannel::Gps,
                _ => SensorChannel::Lidar,
            };
            let windows = draw_windows(&mut state, duration);
            schedule.push(Box::new(SensorOutage::new(victim, channel, windows)));
        }
        if unit(&mut state) < 0.5 && vehicles >= 2 {
            let victim = 1 + (splitmix64(&mut state) as usize) % (vehicles - 1);
            let start = unit(&mut state) * 0.5 * duration;
            let skew = 0.5 + 4.5 * unit(&mut state);
            schedule.push(Box::new(ClockSkew::new(victim, start, skew)));
        }
        if unit(&mut state) < 0.5 {
            let windows = draw_windows(&mut state, duration);
            schedule.push(Box::new(RsuBlackout::new(windows)));
        }
        if schedule.is_empty() {
            // Every seed yields a schedule that actually does something.
            let windows = draw_windows(&mut state, duration);
            schedule.push(Box::new(BurstPacketLoss::new(windows, 20.0)));
        }
        schedule
    }

    /// Appends a fault.
    pub fn push(&mut self, fault: Box<dyn Fault>) {
        self.faults.push(fault);
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults' names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.faults.iter().map(|f| f.name()).collect()
    }

    /// Installs every fault on the engine, consuming the schedule.
    pub fn install(self, engine: &mut Engine) {
        for fault in self.faults {
            engine.add_fault(fault);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::Scenario;

    #[test]
    fn schedules_are_deterministic_for_a_seed() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let a = FaultSchedule::from_seed(seed, 30.0, 6);
            let b = FaultSchedule::from_seed(seed, 30.0, 6);
            assert_eq!(a.names(), b.names(), "seed {seed}");
            assert!(!a.is_empty(), "seed {seed} yields at least one fault");
        }
    }

    #[test]
    fn seeds_explore_the_taxonomy() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            for name in FaultSchedule::from_seed(seed, 30.0, 6).names() {
                seen.insert(name);
            }
        }
        for expected in [
            "burst-loss",
            "noise-ramp",
            "sensor-outage",
            "clock-skew",
            "rsu-blackout",
        ] {
            assert!(seen.contains(expected), "64 seeds never drew {expected}");
        }
    }

    #[test]
    fn installed_schedules_run_to_completion() {
        let scenario = Scenario::builder()
            .label("schedule-install")
            .vehicles(4)
            .duration(8.0)
            .seed(3)
            .build();
        let mut engine = Engine::new(scenario);
        let schedule = FaultSchedule::from_seed(99, 8.0, 4);
        let n = schedule.len();
        schedule.install(&mut engine);
        assert_eq!(engine.faults().len(), n);
        let summary = engine.run();
        assert_eq!(summary.collisions, 0);
        assert!(summary.min_gap.is_finite());
    }
}
