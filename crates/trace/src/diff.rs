//! Trace diffing: find the first diverging tick/phase between two traces.

use platoon_sim::harness::json;

/// Marker used in a [`Divergence`] for the side whose trace ended first.
pub const END_OF_TRACE: &str = "<end of trace>";

/// The first point where two traces disagree.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// The differing record's tick, when either side parses as a trace
    /// record (taken from the left side if present, else the right).
    pub tick: Option<u64>,
    /// The differing record's phase, same preference.
    pub phase: Option<String>,
    /// The left trace's line ([`END_OF_TRACE`] if it ended first).
    pub left: String,
    /// The right trace's line ([`END_OF_TRACE`] if it ended first).
    pub right: String,
}

impl Divergence {
    /// One-line human rendering: `line 12 (tick 7, phase medium): ...`.
    pub fn describe(&self) -> String {
        let at = match (&self.tick, &self.phase) {
            (Some(t), Some(p)) => format!(" (tick {t}, phase {p})"),
            (Some(t), None) => format!(" (tick {t})"),
            _ => String::new(),
        };
        format!(
            "line {}{at}:\n  left:  {}\n  right: {}",
            self.line, self.left, self.right
        )
    }
}

/// Extracts `(tick, phase)` from a canonical trace line, if it parses.
fn tick_and_phase(line: &str) -> (Option<u64>, Option<String>) {
    let Ok(v) = json::parse(line) else {
        return (None, None);
    };
    let tick = v
        .get("tick")
        .and_then(|t| t.as_f64())
        .map(|t| t.round() as u64);
    let phase = v.get("phase").and_then(|p| match p {
        json::Value::Str(s) => Some(s.clone()),
        _ => None,
    });
    (tick, phase)
}

/// Compares two JSONL traces line by line and returns the first
/// divergence, or `None` when they are identical.
///
/// Byte-level comparison: the whole point of the canonical encoding is
/// that equal runs produce equal bytes, so anything subtler would paper
/// over real nondeterminism. A missing line (one trace ended first) is a
/// divergence whose shorter side reads [`END_OF_TRACE`].
pub fn diff_traces(left: &str, right: &str) -> Option<Divergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => continue,
            (a, b) => {
                let left_line = a.unwrap_or(END_OF_TRACE).to_string();
                let right_line = b.unwrap_or(END_OF_TRACE).to_string();
                // Prefer the side that still has a record to name tick/phase.
                let (tick, phase) = match (a, b) {
                    (Some(a), _) => tick_and_phase(a),
                    (None, Some(b)) => tick_and_phase(b),
                    (None, None) => unreachable!("handled above"),
                };
                return Some(Divergence {
                    line,
                    tick,
                    phase,
                    left: left_line,
                    right: right_line,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceRecorder;
    use platoon_sim::trace::{TraceDetail, TracePhase, TraceRecord, Tracer};

    fn jsonl(ticks: &[(u64, u64)]) -> String {
        let mut r = TraceRecorder::new();
        for &(tick, delivered) in ticks {
            r.record(&TraceRecord {
                tick,
                time: tick as f64 * 0.1,
                phase: TracePhase::Medium,
                detail: TraceDetail::MediumStep {
                    offered: 4,
                    delivered,
                    lost: 0,
                    max_latency: 0.002,
                },
            });
        }
        r.to_jsonl()
    }

    #[test]
    fn identical_traces_do_not_diverge() {
        let a = jsonl(&[(0, 12), (1, 11), (2, 12)]);
        assert_eq!(diff_traces(&a, &a), None);
        assert_eq!(diff_traces("", ""), None);
    }

    #[test]
    fn first_divergence_names_line_tick_and_phase() {
        let a = jsonl(&[(0, 12), (1, 11), (2, 12)]);
        let b = jsonl(&[(0, 12), (1, 9), (2, 12)]);
        let d = diff_traces(&a, &b).expect("traces differ");
        assert_eq!(d.line, 2);
        assert_eq!(d.tick, Some(1));
        assert_eq!(d.phase.as_deref(), Some("medium"));
        assert!(d.describe().contains("tick 1"), "{}", d.describe());
        assert!(d.describe().contains("phase medium"));
    }

    #[test]
    fn truncated_trace_diverges_at_the_missing_line() {
        let a = jsonl(&[(0, 12), (1, 11)]);
        let b = jsonl(&[(0, 12)]);
        let d = diff_traces(&a, &b).expect("lengths differ");
        assert_eq!(d.line, 2);
        assert_eq!(d.right, END_OF_TRACE);
        assert_eq!(d.tick, Some(1), "tick comes from the surviving side");
        // Symmetric the other way round.
        let d = diff_traces(&b, &a).expect("lengths differ");
        assert_eq!(d.left, END_OF_TRACE);
        assert_eq!(d.tick, Some(1));
    }

    #[test]
    fn non_record_lines_still_diff_without_tick() {
        let d = diff_traces("not json\n", "also not json\n").expect("differ");
        assert_eq!(d.line, 1);
        assert_eq!(d.tick, None);
        assert_eq!(d.phase, None);
    }
}
