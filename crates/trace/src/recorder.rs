//! The bounded JSONL trace recorder.

use platoon_sim::trace::{TraceDigest, TraceRecord, Tracer};
use std::any::Any;

/// Default retained-line bound: generous enough for any experiment in this
/// workspace (a 60 s full-effort scenario emits a few thousand records)
/// while still bounding a pathological alert storm.
pub const DEFAULT_CAPACITY: usize = 1_000_000;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic, bounded trace recorder.
///
/// Every [`TraceRecord`] is rendered *eagerly* to its compact canonical-JSON
/// line (so retained bytes cannot drift from what was emitted) and folded
/// into a running FNV-1a digest. The digest covers the **full** stream —
/// records dropped past [`capacity`](Self::capacity) still hash — so the
/// [`TraceDigest`] in a run summary pins the entire trace even when the
/// retained file is truncated. Determinism is inherited from the record
/// stream: no wall clock, no thread ids, no randomness.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    lines: Vec<String>,
    capacity: usize,
    records: u64,
    dropped: u64,
    hash: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A recorder retaining at most [`DEFAULT_CAPACITY`] lines.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder retaining at most `capacity` lines (later records are
    /// hashed and counted, but their lines are dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            lines: Vec::new(),
            capacity,
            records: 0,
            dropped: 0,
            hash: FNV_OFFSET,
        }
    }

    /// The retained-line bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained canonical lines, in emission order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Records dropped past the bound (still counted and hashed).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The digest of everything recorded so far.
    pub fn digest(&self) -> TraceDigest {
        TraceDigest {
            records: self.records,
            dropped: self.dropped,
            hash: self.hash,
        }
    }

    /// The retained trace as a JSONL document (one canonical line per
    /// record, trailing newline; empty string when nothing was retained).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    fn fold(&mut self, line: &str) {
        for byte in line.as_bytes() {
            self.hash ^= u64::from(*byte);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        // Delimit lines in the hash stream the same way the file does.
        self.hash ^= u64::from(b'\n');
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
    }
}

impl Tracer for TraceRecorder {
    fn record(&mut self, record: &TraceRecord) {
        let line = record.to_canonical_line();
        self.records += 1;
        self.fold(&line);
        if self.lines.len() < self.capacity {
            self.lines.push(line);
        } else {
            self.dropped += 1;
        }
    }

    fn digest(&self) -> TraceDigest {
        TraceRecorder::digest(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Tracer>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::trace::{TraceDetail, TracePhase};

    fn record(tick: u64) -> TraceRecord {
        TraceRecord {
            tick,
            time: tick as f64 * 0.1,
            phase: TracePhase::Medium,
            detail: TraceDetail::MediumStep {
                offered: 4,
                delivered: 12,
                lost: 0,
                max_latency: 0.0021,
            },
        }
    }

    #[test]
    fn recorder_retains_lines_in_order_and_digests() {
        let mut r = TraceRecorder::new();
        for tick in 0..5 {
            r.record(&record(tick));
        }
        assert_eq!(r.lines().len(), 5);
        assert_eq!(r.dropped(), 0);
        let d = r.digest();
        assert_eq!(d.records, 5);
        assert_eq!(d.dropped, 0);
        assert!(r.to_jsonl().ends_with('\n'));
        assert_eq!(r.to_jsonl().lines().count(), 5);
        // The digest is a pure function of the record stream.
        let mut again = TraceRecorder::new();
        for tick in 0..5 {
            again.record(&record(tick));
        }
        assert_eq!(again.digest(), d);
    }

    #[test]
    fn over_capacity_records_are_hashed_but_not_retained() {
        let mut bounded = TraceRecorder::with_capacity(3);
        let mut unbounded = TraceRecorder::new();
        for tick in 0..10 {
            bounded.record(&record(tick));
            unbounded.record(&record(tick));
        }
        assert_eq!(bounded.lines().len(), 3);
        assert_eq!(bounded.dropped(), 7);
        assert_eq!(bounded.digest().records, 10);
        // The digest pins the FULL stream, truncated file or not.
        assert_eq!(bounded.digest().hash, unbounded.digest().hash);
    }

    #[test]
    fn different_streams_hash_differently() {
        let mut a = TraceRecorder::new();
        let mut b = TraceRecorder::new();
        a.record(&record(1));
        b.record(&record(2));
        assert_ne!(a.digest().hash, b.digest().hash);
        // Line-delimited folding: two records are not the same as one
        // record whose line is their concatenation.
        assert_ne!(a.digest().hash, TraceRecorder::new().digest().hash);
    }

    #[test]
    fn empty_recorder_digest_is_the_fnv_offset() {
        let r = TraceRecorder::new();
        let d = r.digest();
        assert_eq!(d.records, 0);
        assert_eq!(d.hash, 0xcbf2_9ce4_8422_2325);
        assert_eq!(r.to_jsonl(), "");
    }
}
