//! # platoon-trace
//!
//! The deterministic, bounded per-tick trace recorder for the platoon
//! simulation, and the trace-diff helper that turns "golden mismatch"
//! debugging into a one-command answer.
//!
//! The hook trait and record types live in
//! [`platoon_sim::trace`] (so the engine can emit
//! without a dependency cycle); this crate provides:
//!
//! * [`TraceRecorder`] — a [`Tracer`](platoon_sim::trace::Tracer)
//!   implementation that renders every record eagerly to a compact
//!   canonical-JSON line, retains at most a bounded number of lines, and
//!   keeps a running FNV-1a digest over the *full* stream (dropped
//!   records included).
//! * [`diff_traces`] — given two JSONL traces, reports the first
//!   diverging line with its tick and phase (or `None` when byte-equal).
//!
//! Attach a recorder with
//! [`Engine::attach_tracer`](platoon_sim::engine::Engine::attach_tracer),
//! run the scenario, then [`Engine::take_tracer`](platoon_sim::engine::Engine::take_tracer)
//! and downcast back to extract the JSONL text:
//!
//! ```
//! use platoon_sim::prelude::*;
//! use platoon_trace::TraceRecorder;
//!
//! let scenario = Scenario::builder()
//!     .label("traced")
//!     .vehicles(4)
//!     .duration(2.0)
//!     .build();
//! let mut engine = Engine::new(scenario);
//! engine.attach_tracer(Box::new(TraceRecorder::new()));
//! let summary = engine.run();
//! let recorder = engine
//!     .take_tracer()
//!     .unwrap()
//!     .as_any()
//!     .downcast_ref::<TraceRecorder>()
//!     .cloned()
//!     .unwrap();
//! assert_eq!(summary.trace, Some(recorder.digest()));
//! assert!(recorder.to_jsonl().lines().count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod recorder;

pub use diff::{diff_traces, Divergence};
pub use recorder::TraceRecorder;
