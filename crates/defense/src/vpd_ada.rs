//! VPD attack-detection algorithm (VPD-ADA) — Table III "Control
//! Algorithms", after Bermad et al. \[10\].
//!
//! §VI-A.3: "VPD attack detection algorithms help reduce this risk by
//! monitoring the position of members, periodically checking the positional
//! information from other vehicles to make sure they are part of the
//! platoon. The positional information is gathered from multiple sources
//! such as LiDAR systems and/or GPS sensor data from other platoon members
//! ... the sensor information can show any discrepancies in information
//! passed between the platoon members."
//!
//! Two independent checks, each toggleable for the F6 ablation:
//!
//! * **Ranging cross-check** — a beacon claiming to be my predecessor must
//!   agree with my own radar/LiDAR ranging. Catches GPS-spoofed victims,
//!   impersonated phantom braking and position lies.
//! * **RSSI location check** — the received signal strength of any frame
//!   must be consistent with the position its content claims. Catches
//!   ghosts transmitted from one physical radio far from the claimed spot
//!   (Sybil, Convoy-style physical context verification \[4\]).

use platoon_crypto::cert::PrincipalId;
use platoon_detect::checks;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::PlatoonMessage;
use platoon_sim::defense::{Defense, DetectionEvent, RejectReason};
use platoon_sim::world::World;
use platoon_v2x::message::{ChannelKind, Delivery};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;

/// Configuration of the detector.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VpdAdaConfig {
    /// Enable the radar/LiDAR ranging cross-check.
    pub ranging_check: bool,
    /// Gap discrepancy threshold in metres for the ranging check.
    pub gap_threshold: f64,
    /// Claimed-speed vs range-rate discrepancy threshold in m/s.
    pub speed_threshold: f64,
    /// Enable the physical co-location check: a claim to occupy road space
    /// already occupied by another platoon vehicle is physically impossible
    /// (Convoy-style admission evidence \[4\]).
    pub colocation_check: bool,
    /// Enable the RSSI location-consistency check.
    pub rssi_check: bool,
    /// Allowed RSSI anomaly in dB before a frame is flagged (Nakagami m = 3
    /// fading has σ ≈ 4–5 dB; 15 dB keeps false positives negligible).
    pub rssi_threshold_db: f64,
    /// Violations required before the sender is *confirmed* as a suspect
    /// and a detection is raised (individual anomalous frames are rejected
    /// immediately; confirmation is sticky).
    pub violation_limit: u32,
    /// Whether a *confirmed* suspect's entire stream is rejected outright.
    /// Off by default: per-frame rejection already drops the implausible
    /// frames while letting genuine ones through, so wholesale eviction
    /// mostly punishes an impersonation *victim* (whose honest beacons are
    /// fine) by forcing its follower into radar fallback.
    pub evict_confirmed: bool,
    /// Enable the onboard radar-vs-LiDAR fusion guard: persistent
    /// disagreement disables the radar so control fails over to LiDAR.
    pub sensor_fusion_check: bool,
    /// Radar/LiDAR disagreement threshold in metres.
    pub fusion_threshold: f64,
}

impl Default for VpdAdaConfig {
    fn default() -> Self {
        VpdAdaConfig {
            ranging_check: true,
            gap_threshold: 6.0,
            speed_threshold: 3.0,
            colocation_check: true,
            rssi_check: true,
            rssi_threshold_db: 18.0,
            violation_limit: 5,
            evict_confirmed: false,
            sensor_fusion_check: true,
            fusion_threshold: 3.0,
        }
    }
}

impl VpdAdaConfig {
    /// The strict profile: confirmed suspects are evicted wholesale. Right
    /// for identity-multiplication threats (Sybil), where the "stream" has
    /// no honest half worth preserving; wrong for impersonation victims.
    pub fn strict() -> Self {
        VpdAdaConfig {
            evict_confirmed: true,
            ..Default::default()
        }
    }
}

/// The VPD-ADA misbehaviour detector.
/// # Examples
///
/// ```
/// use platoon_defense::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
/// let summary = engine.run();
/// assert_eq!(summary.detections, 0, "honest traffic raises no alarms");
/// ```
#[derive(Clone, Debug)]
pub struct VpdAdaDefense {
    config: VpdAdaConfig,
    /// Consecutive violation counters per (receiver, claimed sender).
    violations: HashMap<(usize, PrincipalId), u32>,
    /// Suspects confirmed (sticky: once flagged, always rejected).
    confirmed: HashMap<PrincipalId, f64>,
    /// Detections raised but not yet drained by `on_step`.
    pending: Vec<DetectionEvent>,
    /// Fusion-guard disagreement counters per vehicle index.
    fusion_violations: HashMap<usize, u32>,
    /// Vehicles whose radar the guard has quarantined.
    quarantined_radars: Vec<usize>,
    rejected: u64,
}

impl VpdAdaDefense {
    /// Creates the detector.
    pub fn new(config: VpdAdaConfig) -> Self {
        VpdAdaDefense {
            config,
            violations: HashMap::new(),
            confirmed: HashMap::new(),
            pending: Vec::new(),
            fusion_violations: HashMap::new(),
            quarantined_radars: Vec::new(),
            rejected: 0,
        }
    }

    /// Vehicle indices whose radar has been quarantined by the fusion guard.
    pub fn quarantined_radars(&self) -> &[usize] {
        &self.quarantined_radars
    }

    /// Confirmed suspects with their detection times.
    pub fn confirmed_suspects(&self) -> Vec<(PrincipalId, f64)> {
        let mut v: Vec<_> = self.confirmed.iter().map(|(k, t)| (*k, *t)).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }

    /// Detection latency for a suspect relative to `attack_start`.
    pub fn detection_latency(&self, suspect: PrincipalId, attack_start: f64) -> Option<f64> {
        self.confirmed
            .get(&suspect)
            .map(|t| (t - attack_start).max(0.0))
    }

    /// Messages rejected.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Records a violation; confirms the suspect once the limit is reached.
    fn violate(&mut self, receiver: usize, suspect: PrincipalId, now: f64) {
        let count = self.violations.entry((receiver, suspect)).or_insert(0);
        *count += 1;
        if *count >= self.config.violation_limit {
            self.confirmed.entry(suspect).or_insert_with(|| {
                self.pending.push(DetectionEvent {
                    time: now,
                    suspect,
                    detector: "vpd-ada",
                });
                now
            });
        }
    }

    fn clear(&mut self, receiver: usize, suspect: PrincipalId) {
        self.violations.remove(&(receiver, suspect));
    }
}

impl Defense for VpdAdaDefense {
    fn name(&self) -> &'static str {
        "vpd-ada"
    }

    fn filter_rx(
        &mut self,
        receiver_idx: usize,
        world: &World,
        delivery: &Delivery,
        envelope: &Envelope,
        now: f64,
    ) -> Result<(), RejectReason> {
        if self.config.evict_confirmed && self.confirmed.contains_key(&envelope.sender) {
            self.rejected += 1;
            return Err(RejectReason::Distrusted);
        }
        let Ok(msg) = envelope.open_unverified() else {
            return Ok(());
        };

        // Extract the position the message claims its sender occupies.
        let claimed_position = match &msg {
            PlatoonMessage::Beacon(b) => Some(b.position),
            PlatoonMessage::JoinRequest { position, .. } => Some(*position),
            _ => None,
        };

        // Co-location check: nobody can claim to stand where another
        // physical platoon vehicle already is.
        if self.config.colocation_check {
            if let Some(claimed) = claimed_position {
                let impossible = world.vehicles.iter().any(|v| {
                    v.principal != envelope.sender
                        && (v.vehicle.state.position - claimed).abs()
                            < v.vehicle.params.length * 0.5
                });
                if impossible {
                    self.violate(receiver_idx, envelope.sender, now);
                    self.rejected += 1;
                    return Err(RejectReason::Implausible);
                }
            }
        }

        // RSSI location check (RF channels only; VLC has no meaningful RSSI).
        if self.config.rssi_check && delivery.channel != ChannelKind::Vlc {
            if let Some(claimed) = claimed_position {
                let rx = &world.vehicles[receiver_idx];
                let d = platoon_v2x::message::distance((claimed, 0.0), rx.position());
                let expected = world
                    .medium
                    .dsrc
                    .median_rx_power_dbm(world.medium.dsrc.default_tx_power_dbm, d);
                if checks::rssi_anomaly(expected, delivery.rssi_dbm, self.config.rssi_threshold_db)
                {
                    self.violate(receiver_idx, envelope.sender, now);
                    self.rejected += 1;
                    return Err(RejectReason::Implausible);
                }
                // A passing RSSI check is weak positive evidence; decay the
                // counter so honest fading outliers never accumulate to a
                // confirmation.
                if let Some(c) = self.violations.get_mut(&(receiver_idx, envelope.sender)) {
                    *c = c.saturating_sub(1);
                }
            }
        }

        // Ranging cross-check for predecessor beacons.
        if self.config.ranging_check && receiver_idx > 0 {
            if let PlatoonMessage::Beacon(b) = &msg {
                let pred_principal = world.vehicles[receiver_idx - 1].principal;
                if envelope.sender == pred_principal {
                    let rx = &world.vehicles[receiver_idx];
                    let claimed_gap = b.position - b.length - rx.vehicle.state.position;
                    let measured_gap = world.true_gap(receiver_idx).unwrap_or(claimed_gap);
                    let claimed_rel_speed = b.speed - rx.vehicle.state.speed;
                    let measured_rel_speed = world
                        .true_range_rate(receiver_idx)
                        .unwrap_or(claimed_rel_speed);
                    if checks::ranging_mismatch(
                        claimed_gap,
                        measured_gap,
                        claimed_rel_speed,
                        measured_rel_speed,
                        self.config.gap_threshold,
                        self.config.speed_threshold,
                    ) {
                        self.violate(receiver_idx, envelope.sender, now);
                        self.rejected += 1;
                        return Err(RejectReason::Implausible);
                    }
                    self.clear(receiver_idx, envelope.sender);
                }
            }
        }
        Ok(())
    }

    fn authorize_join(
        &mut self,
        requester: PrincipalId,
        _envelope: &Envelope,
        _world: &World,
        _now: f64,
    ) -> bool {
        // Confirmed suspects are never admitted.
        !self.confirmed.contains_key(&requester)
    }

    fn on_step(&mut self, world: &mut World, rng: &mut StdRng) -> Vec<DetectionEvent> {
        if self.config.sensor_fusion_check {
            let now = world.time;
            for idx in 1..world.vehicles.len() {
                if self.quarantined_radars.contains(&idx) {
                    continue;
                }
                let Some(true_gap) = world.true_gap(idx) else {
                    continue;
                };
                let true_rate = world.true_range_rate(idx).unwrap_or(0.0);
                let v = &world.vehicles[idx];
                let radar = v.sensors.radar.measure(true_gap, true_rate, now, rng);
                let lidar = v.sensors.lidar.measure(true_gap, now, rng);
                if let (Some((r, _)), Some(l)) = (radar, lidar) {
                    if (r - l).abs() > self.config.fusion_threshold {
                        let c = self.fusion_violations.entry(idx).or_insert(0);
                        *c += 1;
                        if *c >= self.config.violation_limit {
                            // Quarantine the radar: control fails over to
                            // the (independent) LiDAR ranging path.
                            world.vehicles[idx].sensors.radar.fault =
                                platoon_dynamics::sensors::SensorFault::Outage;
                            self.quarantined_radars.push(idx);
                            self.pending.push(DetectionEvent {
                                time: now,
                                suspect: world.vehicles[idx].principal,
                                detector: "vpd-ada-fusion",
                            });
                        }
                    } else {
                        self.fusion_violations.remove(&idx);
                    }
                }
            }
        }
        std::mem::take(&mut self.pending)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_attacks::prelude::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(50.0)
            .seed(41)
            .build()
    }

    fn defense(engine: &Engine) -> &VpdAdaDefense {
        engine.defenses()[0]
            .as_any()
            .downcast_ref::<VpdAdaDefense>()
            .unwrap()
    }

    #[test]
    fn detects_gps_spoofed_victim() {
        let mut engine = Engine::new(scenario("vpd-gps"));
        engine.add_attack(Box::new(GpsSpoofAttack::new(GpsSpoofConfig::default())));
        engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
        let s = engine.run();
        let d = defense(&engine);
        let latency = d.detection_latency(platoon_crypto::cert::PrincipalId(2), 10.0);
        assert!(latency.is_some(), "spoofed victim must be flagged");
        // 1 m/s drift crosses the 6 m threshold after ≈6 s plus debounce.
        assert!(
            latency.unwrap() < 20.0,
            "detection should be prompt: {latency:?}"
        );
        assert!(s.detections >= 1);
    }

    #[test]
    fn detects_impersonated_phantom_braking() {
        let mut engine = Engine::new(scenario("vpd-imp"));
        engine.add_attack(Box::new(ImpersonationAttack::new(
            ImpersonationConfig::default(),
        )));
        engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
        let s = engine.run();
        let d = defense(&engine);
        // The forged beacons claim the victim's identity with a 3 m/s speed
        // lie: the follower's ranging disagrees and flags the (claimed)
        // sender.
        assert!(
            d.detection_latency(platoon_crypto::cert::PrincipalId(1), 15.0)
                .is_some(),
            "impersonated beacons must be flagged"
        );
        // Detection is prompt (within a second of the first forgery) and
        // the forged stream is evicted. Note the eviction is sticky by
        // design: the follower then runs on radar fallback, trading spacing
        // efficiency for integrity — the §VI-A.3 performance-cost challenge.
        let d2 = defense(&engine);
        let latency = d2
            .detection_latency(platoon_crypto::cert::PrincipalId(1), 15.0)
            .unwrap();
        assert!(latency < 5.0, "detection latency {latency}");
        assert!(s.detections >= 1);
        assert!(s.rejected_messages > 10);
    }

    #[test]
    fn rssi_check_blocks_sybil_ghost_joins() {
        let mut engine = Engine::new(
            Scenario::builder()
                .label("vpd-sybil")
                .vehicles(5)
                .duration(40.0)
                .max_platoon_size(12)
                .seed(9)
                .build(),
        );
        engine.add_attack(Box::new(SybilAttack::new(SybilConfig::default())));
        engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::strict())));
        engine.run();
        // Ghost joins claim mid-platoon positions but transmit from behind
        // the platoon: the RSSI/co-location anomalies confirm them and the
        // strict profile bars confirmed identities from the roster.
        assert_eq!(
            engine.maneuvers().roster().len(),
            5,
            "no ghost may complete a join under VPD-ADA"
        );
    }

    #[test]
    fn no_false_positives_on_honest_platoon() {
        let mut engine = Engine::new(scenario("vpd-honest"));
        engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
        let s = engine.run();
        assert_eq!(s.detections, 0, "honest platoon must raise no detections");
        assert_eq!(defense(&engine).confirmed_suspects().len(), 0);
    }

    #[test]
    fn ranging_only_ablation_misses_ghosts_but_catches_spoof() {
        let cfg = VpdAdaConfig {
            rssi_check: false,
            ..Default::default()
        };
        // Catches the GPS spoof...
        let mut engine = Engine::new(scenario("vpd-ablate"));
        engine.add_attack(Box::new(GpsSpoofAttack::new(GpsSpoofConfig::default())));
        engine.add_defense(Box::new(VpdAdaDefense::new(cfg)));
        engine.run();
        assert!(!defense(&engine).confirmed_suspects().is_empty());

        // ...but ghosts sail through without the RSSI check.
        let mut engine2 = Engine::new(
            Scenario::builder()
                .label("vpd-ablate-sybil")
                .vehicles(5)
                .duration(40.0)
                .max_platoon_size(12)
                .seed(9)
                .build(),
        );
        engine2.add_attack(Box::new(SybilAttack::new(SybilConfig::default())));
        engine2.add_defense(Box::new(VpdAdaDefense::new(cfg)));
        engine2.run();
        assert!(
            engine2.maneuvers().roster().len() > 5,
            "without RSSI checking, ghosts still infiltrate"
        );
    }
}
