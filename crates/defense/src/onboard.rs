//! On-board system hardening — Table III "Securing Onboard Systems".
//!
//! §VI-A.5: "simple antivirus on the on-board computer system and not
//! downloading from unauthorized sources can reduce the chance of such an
//! attack being successful. On-board computers and systems should also use
//! firewalls and only allow components to communicate with what they need
//! to."
//!
//! Two measures:
//!
//! * **firewall / component isolation** — marks vehicles as `hardened`,
//!   which the malware worm respects (an order of magnitude lower
//!   per-contact exploitation probability);
//! * **antivirus scanning** — each scan interval, an infected ECU is
//!   detected and disinfected with some probability; disinfection restores
//!   the platooning service and clears malware side-effects (beacon lies,
//!   radar faults).

use platoon_dynamics::sensors::SensorFault;
use platoon_sim::defense::{Defense, DetectionEvent};
use platoon_sim::world::World;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Configuration of the hardening defense.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnboardConfig {
    /// Deploy the firewall (sets the `hardened` flag on every vehicle).
    pub firewall: bool,
    /// Per-second probability that the antivirus detects an infection.
    pub antivirus_detect_per_second: f64,
    /// Seconds between infection detection and completed remediation.
    pub remediation_delay: f64,
}

impl Default for OnboardConfig {
    fn default() -> Self {
        OnboardConfig {
            firewall: true,
            antivirus_detect_per_second: 0.2,
            remediation_delay: 2.0,
        }
    }
}

/// The on-board hardening defense.
/// # Examples
///
/// ```
/// use platoon_defense::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_defense(Box::new(OnboardDefense::new(OnboardConfig::default())));
/// engine.run();
/// assert!(engine.world().vehicles.iter().all(|v| v.hardened));
/// ```
#[derive(Clone, Debug)]
pub struct OnboardDefense {
    config: OnboardConfig,
    /// Pending remediations: (vehicle index, completes at).
    remediating: Vec<(usize, f64)>,
    disinfections: u64,
    deployed: bool,
}

impl OnboardDefense {
    /// Creates the defense.
    pub fn new(config: OnboardConfig) -> Self {
        OnboardDefense {
            config,
            remediating: Vec::new(),
            disinfections: 0,
            deployed: false,
        }
    }

    /// Completed disinfections.
    pub fn disinfections(&self) -> u64 {
        self.disinfections
    }
}

impl Defense for OnboardDefense {
    fn name(&self) -> &'static str {
        "onboard-hardening"
    }

    fn on_step(&mut self, world: &mut World, rng: &mut StdRng) -> Vec<DetectionEvent> {
        let now = world.time;
        let mut detections = Vec::new();

        if self.config.firewall && !self.deployed {
            for v in world.vehicles.iter_mut() {
                v.hardened = true;
            }
            self.deployed = true;
        }

        // Antivirus scan.
        let dt = world.medium.step_len;
        let p_step = 1.0 - (1.0 - self.config.antivirus_detect_per_second).powf(dt);
        for idx in 0..world.vehicles.len() {
            if !world.vehicles[idx].infected {
                continue;
            }
            if self.remediating.iter().any(|(i, _)| *i == idx) {
                continue;
            }
            if rng.gen_range(0.0..1.0) < p_step {
                self.remediating
                    .push((idx, now + self.config.remediation_delay));
                detections.push(DetectionEvent {
                    time: now,
                    suspect: world.vehicles[idx].principal,
                    detector: "antivirus",
                });
            }
        }

        // Complete due remediations.
        let due: Vec<usize> = self
            .remediating
            .iter()
            .filter(|(_, t)| now >= *t)
            .map(|(i, _)| *i)
            .collect();
        self.remediating.retain(|(_, t)| now < *t);
        for idx in due {
            let v = &mut world.vehicles[idx];
            v.infected = false;
            v.platooning_enabled = true;
            v.beacon_lie = None;
            // Clear malware-planted sensor faults (physical-layer attacks on
            // the sensor would persist; a software fault does not).
            if matches!(
                v.sensors.radar.fault,
                SensorFault::Bias { .. } | SensorFault::Frozen { .. }
            ) {
                v.sensors.radar.fault = SensorFault::None;
            }
            self.disinfections += 1;
        }
        detections
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_attacks::prelude::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(60.0)
            .seed(31)
            .build()
    }

    fn run(defended: bool) -> (RunSummary, Option<u64>) {
        let mut engine = Engine::new(scenario("onboard"));
        engine.add_attack(Box::new(MalwareAttack::new(MalwareConfig::default())));
        if defended {
            engine.add_defense(Box::new(OnboardDefense::new(OnboardConfig::default())));
        }
        let s = engine.run();
        let disinfections = defended.then(|| {
            engine.defenses()[0]
                .as_any()
                .downcast_ref::<OnboardDefense>()
                .unwrap()
                .disinfections()
        });
        (s, disinfections)
    }

    #[test]
    fn hardening_restores_availability() {
        let (undefended, _) = run(false);
        let (defended, disinfections) = run(true);
        assert!(disinfections.unwrap() > 0, "antivirus should disinfect");
        assert!(
            defended.service_down_fraction < 0.5 * undefended.service_down_fraction,
            "hardening must restore platooning availability: {} vs {}",
            defended.service_down_fraction,
            undefended.service_down_fraction
        );
        assert!(defended.detections > 0);
    }

    #[test]
    fn firewall_slows_the_worm() {
        // Firewall only (no antivirus): the epidemic is contained, not cured.
        let mut engine = Engine::new(scenario("firewall-only"));
        engine.add_attack(Box::new(MalwareAttack::new(MalwareConfig::default())));
        engine.add_defense(Box::new(OnboardDefense::new(OnboardConfig {
            firewall: true,
            antivirus_detect_per_second: 0.0,
            remediation_delay: 2.0,
        })));
        engine.run();
        let infected = engine.attacks()[0]
            .as_any()
            .downcast_ref::<MalwareAttack>()
            .unwrap()
            .infected_count();

        let mut open = Engine::new(scenario("no-firewall"));
        open.add_attack(Box::new(MalwareAttack::new(MalwareConfig::default())));
        open.run();
        let infected_open = open.attacks()[0]
            .as_any()
            .downcast_ref::<MalwareAttack>()
            .unwrap()
            .infected_count();

        assert!(
            infected < infected_open,
            "firewall must slow the spread: {infected} vs {infected_open}"
        );
    }

    #[test]
    fn clean_platoon_untouched() {
        let mut engine = Engine::new(scenario("onboard-clean"));
        engine.add_defense(Box::new(OnboardDefense::new(OnboardConfig::default())));
        let s = engine.run();
        assert_eq!(s.detections, 0);
        assert_eq!(s.service_down_fraction, 0.0);
        let d = engine.defenses()[0]
            .as_any()
            .downcast_ref::<OnboardDefense>()
            .unwrap();
        assert_eq!(d.disinfections(), 0);
    }
}
