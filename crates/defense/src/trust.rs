//! Trust management — the REPLACE-style reputation scheme the paper
//! discusses via Hu et al. \[6\] and the trust-management survey \[20\].
//!
//! Each platoon member keeps a beta-reputation score per claimed identity.
//! Evidence is *behavioural*: a beacon consistent with the sender's own
//! previous claims (physically plausible motion) earns positive evidence;
//! an inconsistent one (teleporting position, impossible acceleration,
//! contradictory speed) earns negative evidence. When an attacker forges
//! beacons under a victim's identity, the *victim's* stream becomes
//! self-contradictory — so its reputation collapses and the platoon evicts
//! it. That is precisely the paper's §V-F "heavily damaged reputation for
//! the innocent user ... leading to being unable to join or form a platoon":
//! trust management turns impersonation into denial-of-service against the
//! victim unless paired with cryptographic sender authentication.

use platoon_crypto::cert::PrincipalId;
use platoon_detect::checks::{claim_faults, ClaimSnapshot, KinematicLimits};
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::PlatoonMessage;
use platoon_sim::defense::{Defense, DetectionEvent, RejectReason};
use platoon_sim::world::World;
use platoon_v2x::message::Delivery;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;

/// Configuration of the trust manager.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrustConfig {
    /// Trust score below which a sender's messages are rejected.
    pub eviction_threshold: f64,
    /// Exponential forgetting factor applied per second (1.0 = never
    /// forget; the half-life ablation knob of F8).
    pub forgetting_per_second: f64,
    /// Maximum physically plausible acceleration magnitude, m/s².
    pub max_accel: f64,
    /// Position-consistency tolerance in metres (beyond dead-reckoning).
    pub position_tolerance: f64,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            eviction_threshold: 0.4,
            forgetting_per_second: 0.995,
            max_accel: 10.0,
            position_tolerance: 8.0,
        }
    }
}

/// Beta-reputation state for one identity.
#[derive(Clone, Copy, Debug, Default)]
struct Reputation {
    /// Positive evidence mass α.
    alpha: f64,
    /// Negative evidence mass β.
    beta: f64,
    /// Last claim, for consistency checking via `platoon_detect::checks`.
    last_claim: Option<ClaimSnapshot>,
    last_update: f64,
}

impl Reputation {
    /// Expected trust: `(α + 1) / (α + β + 2)` (uniform prior).
    fn score(&self) -> f64 {
        (self.alpha + 1.0) / (self.alpha + self.beta + 2.0)
    }
}

/// The trust-management defense.
///
/// Reputation is kept **per observer** (each receiver judges the stream it
/// itself hears), as in REPLACE; an identity is evicted platoon-wide once
/// any observer's score collapses.
/// # Examples
///
/// ```
/// use platoon_defense::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_defense(Box::new(TrustDefense::new(TrustConfig::default())));
/// engine.run();
/// let trust = engine.defenses()[0].as_any().downcast_ref::<TrustDefense>().unwrap();
/// assert!(trust.trust_of(platoon_crypto::PrincipalId(1)) > 0.8);
/// ```
#[derive(Clone, Debug)]
pub struct TrustDefense {
    config: TrustConfig,
    reputations: HashMap<(usize, PrincipalId), Reputation>,
    evicted: HashMap<PrincipalId, f64>,
    pending: Vec<DetectionEvent>,
    rejected: u64,
}

impl TrustDefense {
    /// Creates the trust manager.
    pub fn new(config: TrustConfig) -> Self {
        TrustDefense {
            config,
            reputations: HashMap::new(),
            evicted: HashMap::new(),
            pending: Vec::new(),
            rejected: 0,
        }
    }

    /// Lowest trust score any observer assigns to an identity (0.5 for
    /// strangers nobody has observed).
    pub fn trust_of(&self, id: PrincipalId) -> f64 {
        let scores: Vec<f64> = self
            .reputations
            .iter()
            .filter(|((_, pid), _)| *pid == id)
            .map(|(_, rep)| rep.score())
            .collect();
        if scores.is_empty() {
            0.5
        } else {
            scores.into_iter().fold(f64::INFINITY, f64::min)
        }
    }

    /// Identities evicted, with eviction times.
    pub fn evicted(&self) -> Vec<(PrincipalId, f64)> {
        let mut v: Vec<_> = self.evicted.iter().map(|(k, t)| (*k, *t)).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }

    /// Messages rejected due to distrust.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    fn observe_beacon(
        &mut self,
        observer: usize,
        sender: PrincipalId,
        now: f64,
        position: f64,
        speed: f64,
        accel: f64,
    ) {
        let config = self.config;
        let rep = self.reputations.entry((observer, sender)).or_default();

        // Forgetting.
        if rep.last_update > 0.0 {
            let dt = (now - rep.last_update).max(0.0);
            let decay = config.forgetting_per_second.powf(dt);
            rep.alpha *= decay;
            rep.beta *= decay;
        }
        rep.last_update = now;

        // The shared plausibility vocabulary from `platoon-detect`, in its
        // legacy trust profile (no claimed-vs-implied acceleration
        // cross-check): teleport, implied acceleration and the same-instant
        // contradiction test — the signature of an impersonator
        // transmitting alongside the real sender.
        let next = ClaimSnapshot {
            time: now,
            position,
            speed,
            accel,
        };
        let limits = KinematicLimits {
            max_accel: config.max_accel,
            position_tolerance: config.position_tolerance,
            accel_mismatch: None,
            ..KinematicLimits::default()
        };
        let consistent = claim_faults(rep.last_claim, next, &limits).is_empty();
        if consistent {
            rep.alpha += 1.0;
        } else {
            // Inconsistency is weighted: one contradiction outweighs many
            // routine confirmations (standard in beta-reputation systems).
            rep.beta += 5.0;
        }
        // Bound the total evidence mass so a long clean history cannot make
        // an identity effectively unimpeachable (trust inertia).
        let mass = rep.alpha + rep.beta;
        if mass > 50.0 {
            let scale = 50.0 / mass;
            rep.alpha *= scale;
            rep.beta *= scale;
        }
        rep.last_claim = Some(next);

        if rep.score() < config.eviction_threshold && !self.evicted.contains_key(&sender) {
            self.evicted.insert(sender, now);
            self.pending.push(DetectionEvent {
                time: now,
                suspect: sender,
                detector: "trust",
            });
        }
    }
}

impl Defense for TrustDefense {
    fn name(&self) -> &'static str {
        "trust"
    }

    fn filter_rx(
        &mut self,
        receiver_idx: usize,
        _world: &World,
        _delivery: &Delivery,
        envelope: &Envelope,
        now: f64,
    ) -> Result<(), RejectReason> {
        if self.evicted.contains_key(&envelope.sender) {
            self.rejected += 1;
            return Err(RejectReason::Distrusted);
        }
        if let Ok(PlatoonMessage::Beacon(b)) = envelope.open_unverified() {
            self.observe_beacon(
                receiver_idx,
                envelope.sender,
                now,
                b.position,
                b.speed,
                b.accel,
            );
            if self.evicted.contains_key(&envelope.sender) {
                self.rejected += 1;
                return Err(RejectReason::Distrusted);
            }
        }
        Ok(())
    }

    fn authorize_join(
        &mut self,
        requester: PrincipalId,
        _envelope: &Envelope,
        _world: &World,
        _now: f64,
    ) -> bool {
        !self.evicted.contains_key(&requester)
            && self.trust_of(requester) >= self.config.eviction_threshold
    }

    fn on_step(&mut self, _world: &mut World, _rng: &mut StdRng) -> Vec<DetectionEvent> {
        std::mem::take(&mut self.pending)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_attacks::prelude::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(45.0)
            .seed(19)
            .build()
    }

    fn trust(engine: &Engine) -> &TrustDefense {
        engine.defenses()[0]
            .as_any()
            .downcast_ref::<TrustDefense>()
            .unwrap()
    }

    #[test]
    fn honest_members_keep_high_trust() {
        let mut engine = Engine::new(scenario("trust-honest"));
        engine.add_defense(Box::new(TrustDefense::new(TrustConfig::default())));
        let s = engine.run();
        assert_eq!(s.detections, 0);
        let t = trust(&engine);
        for i in 0..6 {
            let score = t.trust_of(platoon_crypto::cert::PrincipalId(i));
            assert!(score > 0.8, "vehicle {i} trust {score}");
        }
    }

    #[test]
    fn impersonation_destroys_the_victims_reputation() {
        // The paper's §V-F claim: the *innocent* user takes the blame.
        let mut engine = Engine::new(scenario("trust-imp"));
        engine.add_attack(Box::new(ImpersonationAttack::new(
            ImpersonationConfig::default(),
        )));
        engine.add_defense(Box::new(TrustDefense::new(TrustConfig::default())));
        engine.run();
        let t = trust(&engine);
        let victim = platoon_crypto::cert::PrincipalId(1);
        assert!(
            t.evicted().iter().any(|(id, _)| *id == victim),
            "the victim identity must end up evicted (reputation damage)"
        );
        assert!(t.trust_of(victim) < 0.5);
    }

    #[test]
    fn insider_impossible_claims_get_evicted() {
        // A comm-only trust scheme catches *self-inconsistent* streams: the
        // insider claims a physically impossible deceleration in every
        // beacon. (A persistent but self-consistent position offset needs
        // the sensor cross-checks of VPD-ADA instead — that boundary is the
        // §VI-B.3 trust open challenge.)
        let mut engine = Engine::new(scenario("trust-fdi"));
        engine.add_attack(Box::new(FalsificationAttack::new(FalsificationConfig {
            insider_index: 2,
            start: 10.0,
            end: f64::INFINITY,
            lie: BeaconLieConfig {
                position_offset: 0.0,
                speed_offset: 0.0,
                accel_offset: -15.0,
            },
        })));
        engine.add_defense(Box::new(TrustDefense::new(TrustConfig::default())));
        engine.run();
        let t = trust(&engine);
        assert!(
            t.evicted()
                .iter()
                .any(|(id, _)| *id == platoon_crypto::cert::PrincipalId(2)),
            "impossible claims must destroy trust; evicted: {:?}",
            t.evicted()
        );
    }

    #[test]
    fn eviction_mitigates_the_disturbance() {
        let mut undefended = Engine::new(scenario("trust-undef"));
        undefended.add_attack(Box::new(ImpersonationAttack::new(
            ImpersonationConfig::default(),
        )));
        let u = undefended.run();

        let mut defended = Engine::new(scenario("trust-def"));
        defended.add_attack(Box::new(ImpersonationAttack::new(
            ImpersonationConfig::default(),
        )));
        defended.add_defense(Box::new(TrustDefense::new(TrustConfig::default())));
        let d = defended.run();
        assert!(
            d.oscillation_energy < u.oscillation_energy,
            "evicting the poisoned identity should reduce disturbance: {} vs {}",
            d.oscillation_energy,
            u.oscillation_energy
        );
    }
}
