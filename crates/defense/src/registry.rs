//! The defense mechanism registry: Table III of the paper as data, bound to
//! the modules that implement each mechanism.

use serde::Serialize;

/// One row of Table III.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MechanismDescriptor {
    /// Machine name, matching `Defense::name()` where a module exists.
    pub name: &'static str,
    /// Display name as used in the paper's Table III.
    pub display_name: &'static str,
    /// Attacks the mechanism targets, by attack-registry machine name.
    pub mitigates: &'static [&'static str],
    /// The paper's stated open challenge for the mechanism.
    pub open_challenge: &'static str,
    /// Paper section describing it.
    pub section: &'static str,
    /// Implementing modules / scenario knobs in this repository.
    pub module: &'static str,
    /// Experiments measuring it.
    pub experiments: &'static str,
}

/// The full Table III catalogue, in the paper's row order.
pub fn catalog() -> Vec<MechanismDescriptor> {
    vec![
        MechanismDescriptor {
            name: "keys",
            display_name: "Secret and Public Keys",
            mitigates: &[
                "eavesdrop",
                "fake-maneuver",
                "replay",
                "sybil",
                "impersonation",
                "dos-join-flood",
            ],
            open_challenge: "Large scale testing of current methods of key creation and \
                             distribution to compare effectiveness against the cost.",
            section: "VI-A.1",
            module: "scenario AuthMode::{GroupMac, Pki} + platoon_defense::anti_replay + \
                     platoon_crypto::key_agreement",
            experiments: "F1, F3, F5, F7, F8, T3",
        },
        MechanismDescriptor {
            name: "rsu-gatekeeper",
            display_name: "Roadside Units (RSU)",
            mitigates: &["impersonation", "fake-maneuver", "dos-join-flood", "sybil"],
            open_challenge: "More research into RSU network security and identification of \
                             rogue RSUs.",
            section: "VI-A.2",
            module: "platoon_defense::rsu",
            experiments: "F4, T3",
        },
        MechanismDescriptor {
            name: "control-algorithms",
            display_name: "Control Algorithms",
            mitigates: &[
                "dos-join-flood",
                "sybil",
                "replay",
                "fake-maneuver",
                "insider-fdi",
                "sensor-spoof",
            ],
            open_challenge: "Where in the network is the most efficient place to deploy and \
                             use the algorithms.",
            section: "VI-A.3",
            module: "platoon_defense::{vpd_ada, mitigation}",
            experiments: "F1, F6, T3",
        },
        MechanismDescriptor {
            name: "hybrid-sp-vlc",
            display_name: "Hybrid Communications",
            mitigates: &["jamming", "sybil", "replay", "fake-maneuver"],
            open_challenge: "The use of VLC and wireless radio communications between V2I is \
                             lacking.",
            section: "VI-A.4",
            module: "platoon_defense::hybrid + scenario CommsMode::{HybridVlc, HybridCv2x}",
            experiments: "F2, F5, T3",
        },
        MechanismDescriptor {
            name: "onboard-hardening",
            display_name: "Securing Onboard Systems",
            mitigates: &["malware", "sensor-spoof"],
            open_challenge: "Most effective means to deploy such security measures without \
                             affecting response.",
            section: "VI-A.5",
            module: "platoon_defense::onboard",
            experiments: "F9, F6, T3",
        },
        MechanismDescriptor {
            name: "trust",
            display_name: "Trust Management (REPLACE [6])",
            mitigates: &["impersonation", "insider-fdi", "sybil"],
            open_challenge: "How trust can be integrated within platoons is largely missing \
                             from the literature (§III).",
            section: "III / VI-B.3",
            module: "platoon_defense::trust",
            experiments: "F8, T3",
        },
    ]
}

/// Looks up a mechanism by machine name.
pub fn descriptor(name: &str) -> Option<MechanismDescriptor> {
    catalog().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_five_table_iii_rows() {
        let c = catalog();
        for name in [
            "keys",
            "rsu-gatekeeper",
            "control-algorithms",
            "hybrid-sp-vlc",
            "onboard-hardening",
        ] {
            assert!(descriptor(name).is_some(), "missing {name}");
        }
        assert!(c.len() >= 5);
    }

    #[test]
    fn every_mitigated_attack_exists_in_the_attack_registry() {
        for mech in catalog() {
            for attack in mech.mitigates {
                assert!(
                    platoon_attacks::registry::descriptor(attack).is_some(),
                    "{} claims to mitigate unknown attack {attack}",
                    mech.name
                );
            }
        }
    }

    #[test]
    fn every_table_ii_attack_has_at_least_one_mitigation() {
        let mechanisms = catalog();
        for attack in platoon_attacks::registry::catalog() {
            let covered = mechanisms
                .iter()
                .any(|m| m.mitigates.contains(&attack.name))
                // Eavesdropping is mitigated by keys (encryption), listed
                // under "keys" in Table III.
                || attack.name == "eavesdrop";
            assert!(covered, "no mechanism mitigates {}", attack.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let c = catalog();
        let mut names: Vec<_> = c.iter().map(|d| d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }
}
