//! RSU-assisted security — Table III "Roadside Units", after Lai et al. \[8\].
//!
//! §VI-A.2: RSUs "can be used to issue secret keys to individuals seeking to
//! communicate directly with each other ... The RSU has limited authority.
//! Its primary role is to distribute secret keys to authorised users ...
//! This setup gives the trusted authority much better control over who has
//! the security key and updating the keys so that anomalous users can be
//! screened out faster."
//!
//! The defense models the RSU as a *join gatekeeper with a registration
//! step*: a vehicle that wants to platoon must first register with an RSU
//! (presenting its certificate over V2I), which the RSU reports to the
//! leader. Join requests from unregistered identities are refused before
//! they consume leader resources — which is what blunts the join-flood DoS
//! and the Sybil ghosts (a single attacker radio cannot register a thousand
//! certified identities). RSUs also shorten revocation latency: the CRL
//! snapshot each vehicle holds refreshes whenever an RSU is in range.

use platoon_crypto::cert::PrincipalId;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::PlatoonMessage;
use platoon_sim::defense::{Defense, DetectionEvent, RejectReason};
use platoon_sim::world::World;
use platoon_v2x::message::{distance, Delivery};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{HashMap, HashSet};

/// Configuration of the RSU gatekeeper.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RsuConfig {
    /// Radio range within which an RSU serves vehicles, metres.
    pub service_range: f64,
    /// Identities pre-registered before the run (provisioned fleet members
    /// and any legitimate joiners expected in the scenario).
    pub preregistered: Vec<u64>,
    /// Whether join requests from unregistered identities are rejected at
    /// reception (before touching the manoeuvre engine).
    pub gatekeep_joins: bool,
    /// Whether the RSU monitors driver behaviour — §VI-A.2: RSUs "can
    /// monitor the driver's behaviour within the platoon network, which can
    /// ultimately enable [detection of] various attacks, including
    /// impersonation attacks". Implemented as a same-instant contradiction
    /// monitor over the beacon streams the RSU overhears.
    pub behaviour_monitoring: bool,
}

impl Default for RsuConfig {
    fn default() -> Self {
        RsuConfig {
            service_range: 500.0,
            preregistered: Vec::new(),
            gatekeep_joins: true,
            behaviour_monitoring: true,
        }
    }
}

/// The RSU support defense.
/// # Examples
///
/// ```
/// use platoon_defense::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(
///     Scenario::builder()
///         .vehicles(4)
///         .rsu((100.0, 8.0))
///         .duration(5.0)
///         .build(),
/// );
/// engine.add_defense(Box::new(RsuDefense::new(RsuConfig::default())));
/// engine.run();
/// let rsu = engine.defenses()[0].as_any().downcast_ref::<RsuDefense>().unwrap();
/// assert!(rsu.coverage_fraction() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct RsuDefense {
    config: RsuConfig,
    registered: HashSet<PrincipalId>,
    /// Last claim per sender: (timestamp, position, speed).
    last_claims: HashMap<PrincipalId, (f64, f64, f64)>,
    /// Identities the behaviour monitor has flagged.
    flagged: HashSet<PrincipalId>,
    pending_detections: Vec<DetectionEvent>,
    refused_joins: u64,
    /// Cumulative time with at least one RSU in platoon range (coverage
    /// metric for the low-density open challenge).
    covered_time: f64,
    total_time: f64,
    last_time: f64,
}

impl RsuDefense {
    /// Creates the gatekeeper.
    pub fn new(config: RsuConfig) -> Self {
        let registered = config
            .preregistered
            .iter()
            .map(|&id| PrincipalId(id))
            .collect();
        RsuDefense {
            config,
            registered,
            last_claims: HashMap::new(),
            flagged: HashSet::new(),
            pending_detections: Vec::new(),
            refused_joins: 0,
            covered_time: 0.0,
            total_time: 0.0,
            last_time: 0.0,
        }
    }

    /// Registers an identity (e.g. a joiner passing an RSU before the run).
    pub fn register(&mut self, id: PrincipalId) {
        self.registered.insert(id);
    }

    /// Whether an identity is registered.
    pub fn is_registered(&self, id: PrincipalId) -> bool {
        self.registered.contains(&id)
    }

    /// Join requests refused at the gate.
    pub fn refused_joins(&self) -> u64 {
        self.refused_joins
    }

    /// Identities flagged by the behaviour monitor.
    pub fn flagged(&self) -> Vec<PrincipalId> {
        let mut v: Vec<_> = self.flagged.iter().copied().collect();
        v.sort();
        v
    }

    /// Fraction of the run with an RSU within service range of the platoon.
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        self.covered_time / self.total_time
    }

    fn rsu_in_range(&self, world: &World) -> bool {
        let mid = world.vehicles[world.vehicles.len() / 2].position();
        world
            .rsus
            .iter()
            .any(|r| !r.compromised && distance(r.position, mid) <= self.config.service_range)
    }
}

impl Defense for RsuDefense {
    fn name(&self) -> &'static str {
        "rsu-gatekeeper"
    }

    fn filter_rx(
        &mut self,
        _receiver_idx: usize,
        world: &World,
        _delivery: &Delivery,
        envelope: &Envelope,
        _now: f64,
    ) -> Result<(), RejectReason> {
        // RSU services are only available while one is reachable — the
        // low-RSU-density open challenge of §VI-A.2.
        if !self.rsu_in_range(world) {
            return Ok(());
        }
        let Ok(msg) = envelope.open_unverified() else {
            return Ok(());
        };
        match msg {
            PlatoonMessage::JoinRequest { requester, .. }
                if self.config.gatekeep_joins && !self.registered.contains(&requester) =>
            {
                self.refused_joins += 1;
                return Err(RejectReason::Distrusted);
            }
            PlatoonMessage::Beacon(b) if self.config.behaviour_monitoring => {
                // Two beacons claiming the same instant with materially
                // different kinematics: an impersonator transmitting
                // alongside the real sender. The monitor cannot tell which
                // frame is genuine, so it does not drop either — it reports
                // the identity to the trusted authority (a DetectionEvent),
                // whose revocation/re-keying is the actual remedy (the
                // "keys" mechanism). This is exactly the paper's division of
                // labour: RSUs *detect* impersonation (§VI-A.2).
                let now_key = b.timestamp;
                if let Some(&(t0, p0, v0)) = self.last_claims.get(&envelope.sender) {
                    if (now_key - t0).abs() < 1e-6
                        && ((b.position - p0).abs() > 5.0 || (b.speed - v0).abs() > 1.0)
                        && self.flagged.insert(envelope.sender)
                    {
                        self.pending_detections.push(DetectionEvent {
                            time: _now,
                            suspect: envelope.sender,
                            detector: "rsu-monitor",
                        });
                    }
                }
                self.last_claims
                    .insert(envelope.sender, (now_key, b.position, b.speed));
            }
            _ => {}
        }
        Ok(())
    }

    fn on_step(&mut self, world: &mut World, _rng: &mut StdRng) -> Vec<DetectionEvent> {
        let now = world.time;
        let dt = (now - self.last_time).max(0.0);
        self.last_time = now;
        self.total_time += dt;
        if self.rsu_in_range(world) {
            self.covered_time += dt;
        }
        std::mem::take(&mut self.pending_detections)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_attacks::prelude::*;
    use platoon_crypto::cert::PrincipalId as P;
    use platoon_proto::messages::PlatoonId;
    use platoon_sim::prelude::*;
    use platoon_v2x::message::NodeId;

    /// A scenario with RSUs lining the platoon's route.
    fn scenario_with_rsus(label: &str) -> Scenario {
        let mut b = Scenario::builder()
            .label(label)
            .vehicles(4)
            .duration(40.0)
            .max_platoon_size(16)
            .seed(13);
        for i in 0..6 {
            b = b.rsu((i as f64 * 300.0, 8.0));
        }
        b.build()
    }

    #[test]
    fn gatekeeper_refuses_unregistered_flood() {
        let mut engine = Engine::new(scenario_with_rsus("rsu-dos"));
        engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig::default())));
        engine.add_defense(Box::new(RsuDefense::new(RsuConfig::default())));
        let s = engine.run();
        let d = engine.defenses()[0]
            .as_any()
            .downcast_ref::<RsuDefense>()
            .unwrap();
        assert!(
            d.refused_joins() > 500,
            "flood refused at the gate: {}",
            d.refused_joins()
        );
        // Nothing reaches the manoeuvre engine.
        assert_eq!(s.maneuvers.join_requests, 0);
        assert!(d.coverage_fraction() > 0.9, "route is RSU-covered");
    }

    #[test]
    fn registered_joiner_gets_in_despite_flood() {
        let mut engine = Engine::new(scenario_with_rsus("rsu-legit"));
        engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig::default())));
        engine.add_attack(Box::new(
            JoinerAgent::new(
                P(600),
                NodeId(600),
                JoinerCredentials::None,
                PlatoonId(1),
                1.0,
            )
            .with_start(10.0),
        ));
        engine.add_defense(Box::new(RsuDefense::new(RsuConfig {
            preregistered: vec![600],
            ..Default::default()
        })));
        engine.run();
        let agent = engine.attacks()[1]
            .as_any()
            .downcast_ref::<JoinerAgent>()
            .unwrap();
        assert!(
            agent.outcome().accepted,
            "registered joiner must get through the gate: {:?}",
            agent.outcome()
        );
    }

    #[test]
    fn no_rsu_coverage_means_no_gatekeeping() {
        // The open challenge: "areas of the network with a low density of
        // RSUs where platoons can not rely on them".
        let scenario = Scenario::builder()
            .label("rsu-uncovered")
            .vehicles(4)
            .duration(30.0)
            .max_platoon_size(16)
            .seed(13)
            .build(); // no RSUs at all
        let mut engine = Engine::new(scenario);
        engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig::default())));
        engine.add_defense(Box::new(RsuDefense::new(RsuConfig::default())));
        let s = engine.run();
        let d = engine.defenses()[0]
            .as_any()
            .downcast_ref::<RsuDefense>()
            .unwrap();
        assert_eq!(d.refused_joins(), 0);
        assert_eq!(d.coverage_fraction(), 0.0);
        assert!(
            s.maneuvers.join_requests > 500,
            "without coverage the flood reaches the leader"
        );
    }

    #[test]
    fn behaviour_monitor_flags_impersonated_stream() {
        let mut engine = Engine::new(scenario_with_rsus("rsu-imp"));
        engine.add_attack(Box::new(ImpersonationAttack::new(ImpersonationConfig {
            victim: 1,
            start: 10.0,
            duration: 15.0,
            ..Default::default()
        })));
        engine.add_defense(Box::new(RsuDefense::new(RsuConfig::default())));
        let s = engine.run();
        let d = engine.defenses()[0]
            .as_any()
            .downcast_ref::<RsuDefense>()
            .unwrap();
        assert!(
            d.flagged().contains(&P(1)),
            "the contradictory stream must be flagged: {:?}",
            d.flagged()
        );
        assert!(s.detections >= 1);
    }

    #[test]
    fn behaviour_monitor_quiet_on_honest_traffic() {
        let mut engine = Engine::new(scenario_with_rsus("rsu-honest"));
        engine.add_defense(Box::new(RsuDefense::new(RsuConfig::default())));
        let s = engine.run();
        assert_eq!(s.detections, 0);
        let d = engine.defenses()[0]
            .as_any()
            .downcast_ref::<RsuDefense>()
            .unwrap();
        assert!(d.flagged().is_empty());
    }

    #[test]
    fn sybil_ghosts_cannot_register() {
        let mut engine = Engine::new(scenario_with_rsus("rsu-sybil"));
        engine.add_attack(Box::new(SybilAttack::new(SybilConfig::default())));
        engine.add_defense(Box::new(RsuDefense::new(RsuConfig::default())));
        engine.run();
        assert_eq!(
            engine.maneuvers().roster().len(),
            4,
            "unregistered ghosts never reach the roster"
        );
    }
}
