//! Attack-resilient control mitigation — Table III "Control Algorithms",
//! after Petrillo et al. \[7\].
//!
//! §VI-A.3: control algorithms "can only reduce the impact of the attack on
//! a platoon" — they do not identify the attacker, they bound what malicious
//! inputs can do to the closed loop. The measures are deliberately
//! *asymmetric*: braking is fail-safe and must never be hindered, while
//! network-induced acceleration and command whiplash are bounded.
//!
//! * **acceleration clamp** — positive commands are saturated below the
//!   physical limit, bounding how hard malicious data can push a vehicle
//!   into its predecessor;
//! * **acceleration slew limit** — command *increases* are rate-limited,
//!   so forged/replayed beacons cannot whipsaw the actuator (braking is
//!   exempt);
//! * **brake sanity check** — a strong brake demand that contradicts the
//!   local radar (gap larger than desired and not closing) is attenuated:
//!   the phantom-braking countermeasure, cross-checking the network against
//!   on-board sensing exactly as \[7\] does with local observers;
//! * **safety override** — independent of everything else, an
//!   imminent-collision time-to-collision triggers firm braking (AEB).

use platoon_sim::defense::Defense;
use platoon_sim::world::World;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Configuration of the mitigation layer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// Clamp positive (accelerating) commands to this many m/s² (None = off).
    pub accel_clamp: Option<f64>,
    /// Maximum command *increase* per second, m/s³ (None = off). Braking is
    /// never slew-limited.
    pub accel_slew: Option<f64>,
    /// Enable the radar-consistency brake sanity check.
    pub brake_sanity: bool,
    /// Brake demands stronger than this (m/s², positive number) are subject
    /// to the sanity check.
    pub sanity_brake_threshold: f64,
    /// Enable the radar-consistency *acceleration* sanity check: a push to
    /// accelerate while the gap is already below the set-point and closing
    /// contradicts local sensing (stale/forged speed data biasing the
    /// equilibrium).
    pub accel_sanity: bool,
    /// Enable the bounded-deviation governor: once the radar gap deviates
    /// from the set-point by more than `governor_deadband`, the cooperative
    /// command is blended with a purely local (radar-only) gap controller.
    /// Malicious communicated data can then bias the equilibrium only within
    /// a bounded envelope — the core guarantee of the resilient-control
    /// approach of \[7\].
    pub deviation_governor: bool,
    /// Deadband in metres before the governor engages.
    pub governor_deadband: f64,
    /// The platoon's configured gap set-point in metres (the deployment
    /// parameter the sanity checks are calibrated against).
    pub gap_setpoint: f64,
    /// Engage the safety override when the true time-to-collision falls
    /// below this many seconds (None = off).
    pub safety_ttc: Option<f64>,
    /// Override braking strength, m/s² (positive number, applied negative).
    pub override_brake: f64,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        MitigationConfig {
            accel_clamp: Some(1.5),
            accel_slew: Some(8.0),
            brake_sanity: true,
            sanity_brake_threshold: 1.0,
            accel_sanity: true,
            deviation_governor: true,
            governor_deadband: 3.0,
            gap_setpoint: 10.0,
            safety_ttc: Some(2.0),
            override_brake: 6.0,
        }
    }
}

/// The control mitigation defense.
/// # Examples
///
/// ```
/// use platoon_defense::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_defense(Box::new(MitigationDefense::new(MitigationConfig::default())));
/// let summary = engine.run();
/// assert_eq!(summary.collisions, 0);
/// ```
#[derive(Clone, Debug)]
pub struct MitigationDefense {
    config: MitigationConfig,
    /// Previous step's (post-mitigation) commands per vehicle.
    previous: Vec<f64>,
    clamps: u64,
    slews: u64,
    sanity_blocks: u64,
    overrides: u64,
}

impl MitigationDefense {
    /// Creates the mitigation layer.
    pub fn new(config: MitigationConfig) -> Self {
        MitigationDefense {
            config,
            previous: Vec::new(),
            clamps: 0,
            slews: 0,
            sanity_blocks: 0,
            overrides: 0,
        }
    }

    /// Times the acceleration clamp engaged.
    pub fn clamp_count(&self) -> u64 {
        self.clamps
    }

    /// Times the slew limiter engaged.
    pub fn slew_count(&self) -> u64 {
        self.slews
    }

    /// Times the brake sanity check attenuated a phantom brake.
    pub fn sanity_count(&self) -> u64 {
        self.sanity_blocks
    }

    /// Times the safety override engaged.
    pub fn override_count(&self) -> u64 {
        self.overrides
    }
}

impl Defense for MitigationDefense {
    fn name(&self) -> &'static str {
        "control-mitigation"
    }

    fn adjust_commands(&mut self, world: &World, commands: &mut [f64]) {
        if self.previous.len() != commands.len() {
            self.previous = commands.to_vec();
        }
        let dt = world.medium.step_len;

        for (idx, u) in commands.iter_mut().enumerate() {
            // The leader is human-driven (§II-B): mitigation applies to the
            // automated followers.
            if idx == 0 {
                continue;
            }
            let gap = world.true_gap(idx);
            let rate = world.true_range_rate(idx);

            if let Some(clamp) = self.config.accel_clamp {
                if *u > clamp {
                    *u = clamp;
                    self.clamps += 1;
                }
            }
            if let Some(slew) = self.config.accel_slew {
                let max_up = self.previous[idx] + slew * dt;
                if *u > max_up {
                    *u = max_up;
                    self.slews += 1;
                }
            }
            if self.config.brake_sanity && *u < -self.config.sanity_brake_threshold {
                // Strong brake demand: does the local radar agree there is
                // anything to brake for? CACC's whole benefit is braking on
                // the *communicated* predecessor deceleration before the gap
                // visibly closes, so an anticipatory brake while the vehicle
                // ahead really is decelerating must never be attenuated —
                // the check only fires when local sensing contradicts the
                // demand on every axis: healthy gap, not closing, and the
                // predecessor not braking.
                let ahead_braking = world.vehicles[idx - 1].vehicle.state.accel < -0.5;
                if let (Some(gap), Some(rate)) = (gap, rate) {
                    if gap > self.config.gap_setpoint - 2.0 && rate > -0.5 && !ahead_braking {
                        // Blatant contradiction (gap beyond set-point and
                        // already opening): cancel the phantom brake
                        // entirely; otherwise keep a residual so a marginal
                        // honest cue still bleeds speed.
                        *u = if gap > self.config.gap_setpoint && rate >= 0.0 {
                            0.0
                        } else {
                            -self.config.sanity_brake_threshold
                        };
                        self.sanity_blocks += 1;
                    }
                }
            }
            if self.config.accel_sanity && *u > 0.3 {
                if let (Some(gap), Some(rate)) = (gap, rate) {
                    // Already closer than the set-point and still closing:
                    // accelerating contradicts local sensing.
                    if gap < self.config.gap_setpoint - 1.0 && rate < 0.5 {
                        *u = 0.0;
                        self.sanity_blocks += 1;
                    }
                }
            }
            if self.config.deviation_governor {
                if let (Some(gap), Some(rate)) = (gap, rate) {
                    let err = gap - self.config.gap_setpoint;
                    if err.abs() > self.config.governor_deadband {
                        // Bounded-deviation semantics: outside the deadband
                        // the cooperative command may not *oppose* the local
                        // (radar-only) gap loop. Too close → it may not push
                        // harder than the blend; too far → it may not brake
                        // below the blend. Commands that already agree with
                        // local sensing (honest catch-up at full throttle,
                        // honest emergency braking) pass untouched, so the
                        // governor bounds what forged data can do without
                        // hindering legitimate transients.
                        // Heavily rate-damped local loop: kd/kp ≈ 6 keeps
                        // the governed string from amplifying disturbances
                        // toward the tail. Local sensing gets the majority
                        // weight: past the deadband the network has already
                        // demonstrated it cannot be holding the set-point.
                        let u_local = 0.2 * err + 1.2 * rate;
                        let blend = 0.3 * *u + 0.7 * u_local;
                        let governed = if err < 0.0 {
                            (*u).min(blend)
                        } else {
                            (*u).max(blend)
                        };
                        if governed != *u {
                            *u = governed;
                            self.sanity_blocks += 1;
                        }
                    }
                }
            }
            if let Some(ttc_limit) = self.config.safety_ttc {
                if let (Some(gap), Some(rate)) = (gap, rate) {
                    if let Some(ttc) = platoon_dynamics::safety::time_to_collision(gap, rate) {
                        if ttc < ttc_limit {
                            *u = -self.config.override_brake;
                            self.overrides += 1;
                        }
                    }
                }
            }
            self.previous[idx] = *u;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_attacks::prelude::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str) -> Scenario {
        use platoon_dynamics::profiles::SpeedProfile;
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(60.0)
            .profile(SpeedProfile::BrakeTest {
                cruise: 25.0,
                low: 15.0,
                brake_at: 8.0,
                hold: 5.0,
            })
            .seed(3)
            .build()
    }

    #[test]
    fn mitigation_reduces_replay_impact() {
        let mut undefended = Engine::new(scenario("mit-undef"));
        undefended.add_attack(Box::new(ReplayAttack::new(ReplayConfig::default())));
        let u = undefended.run();

        let mut defended = Engine::new(scenario("mit"));
        defended.add_attack(Box::new(ReplayAttack::new(ReplayConfig::default())));
        defended.add_defense(Box::new(
            MitigationDefense::new(MitigationConfig::default()),
        ));
        let d = defended.run();

        assert!(
            d.oscillation_energy < 0.7 * u.oscillation_energy,
            "mitigation must damp the disturbance: {} vs {}",
            d.oscillation_energy,
            u.oscillation_energy
        );
        assert_eq!(d.collisions, 0);
        let m = defended.defenses()[0]
            .as_any()
            .downcast_ref::<MitigationDefense>()
            .unwrap();
        assert!(m.sanity_count() > 0, "phantom brakes should be attenuated");
    }

    #[test]
    fn safety_override_prevents_sensor_spoof_collision() {
        // The 15 m radar bias that crashes the undefended platoon
        // (attacks::sensor_spoof tests) is caught by the TTC override.
        let mut engine = Engine::new(
            Scenario::builder()
                .label("mit-aeb")
                .vehicles(6)
                .duration(40.0)
                .seed(29)
                .build(),
        );
        engine.add_attack(Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
            mode: SensorAttackMode::Spoof { bias: 15.0 },
            also_lidar: true, // defeat the fusion failover too
            ..Default::default()
        })));
        engine.add_defense(Box::new(
            MitigationDefense::new(MitigationConfig::default()),
        ));
        let s = engine.run();
        assert_eq!(s.collisions, 0, "mitigation must prevent the crash");
        let m = engine.defenses()[0]
            .as_any()
            .downcast_ref::<MitigationDefense>()
            .unwrap();
        // Either the deviation governor held the gap away from the
        // emergency regime, or the TTC override fired as the last resort.
        assert!(
            m.override_count() > 0 || (m.sanity_count() > 0 && s.min_gap > 1.0),
            "a mitigation layer should have engaged: overrides {}, sanity {}, min gap {}",
            m.override_count(),
            m.sanity_count(),
            s.min_gap
        );
    }

    #[test]
    fn honest_platoon_unharmed_by_mitigation() {
        let clean = Engine::new(scenario("mit-clean")).run();
        let mut engine = Engine::new(scenario("mit-honest"));
        engine.add_defense(Box::new(
            MitigationDefense::new(MitigationConfig::default()),
        ));
        let s = engine.run();
        assert_eq!(s.collisions, 0, "mitigation must never cause a crash");
        // Braking is unhindered; only acceleration transients are shaped,
        // so tracking stays comparable.
        assert!(
            s.max_spacing_error < clean.max_spacing_error * 1.5 + 1.0,
            "{} vs {}",
            s.max_spacing_error,
            clean.max_spacing_error
        );
    }

    #[test]
    fn disabled_measures_do_nothing() {
        let cfg = MitigationConfig {
            accel_clamp: None,
            accel_slew: None,
            brake_sanity: false,
            sanity_brake_threshold: 1.0,
            accel_sanity: false,
            deviation_governor: false,
            governor_deadband: 3.0,
            gap_setpoint: 10.0,
            safety_ttc: None,
            override_brake: 6.0,
        };
        let mut engine = Engine::new(scenario("mit-off"));
        engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig::default())));
        engine.add_defense(Box::new(MitigationDefense::new(cfg)));
        engine.run();
        let m = engine.defenses()[0]
            .as_any()
            .downcast_ref::<MitigationDefense>()
            .unwrap();
        assert_eq!(
            m.clamp_count() + m.slew_count() + m.sanity_count() + m.override_count(),
            0
        );
    }
}
