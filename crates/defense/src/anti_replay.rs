//! Anti-replay filtering — the freshness half of Table III's "Secret and
//! Public Keys" mechanism.
//!
//! §VI-A.1: "Such algorithms will also add signatures and timestamps to the
//! messages to further improve security and preventing replay attacks."
//! Signatures alone do not stop replay (a recorded signed message remains
//! valid); this defense adds the freshness check, in both standard flavours
//! so the F1 ablation can compare them:
//!
//! * [`ReplayWindowKind::Timestamp`] — accept only messages younger than
//!   `max_age` and newer than the last accepted one per sender.
//! * [`ReplayWindowKind::Sequence`] — IPsec-style sliding bitmap over
//!   per-sender beacon sequence numbers (robust to reordering, needs no
//!   synchronised clocks).

use platoon_crypto::cert::PrincipalId;
use platoon_crypto::replay::{ReplayVerdict, SequenceWindow, TimestampWindow};
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::PlatoonMessage;
use platoon_sim::defense::{Defense, RejectReason};
use platoon_sim::world::World;
use platoon_v2x::message::Delivery;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;

/// Which freshness mechanism to run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ReplayWindowKind {
    /// Timestamp freshness with a maximum age in seconds.
    Timestamp {
        /// Maximum acceptable message age.
        max_age: f64,
    },
    /// Sequence-number sliding window (beacons only; manoeuvre messages use
    /// their timestamps).
    Sequence {
        /// Window width (1..=64).
        width: u64,
    },
}

/// The anti-replay defense.
/// # Examples
///
/// ```
/// use platoon_defense::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_defense(Box::new(AntiReplayDefense::timestamp()));
/// let summary = engine.run();
/// assert_eq!(summary.collisions, 0);
/// ```
#[derive(Clone, Debug)]
pub struct AntiReplayDefense {
    kind: ReplayWindowKind,
    /// Per-receiver timestamp windows (receivers do not share state).
    ts_windows: HashMap<usize, TimestampWindow<PrincipalId>>,
    /// Per-receiver sequence windows.
    seq_windows: HashMap<usize, SequenceWindow<PrincipalId>>,
    rejected: u64,
    accepted: u64,
}

impl AntiReplayDefense {
    /// Creates the defense with the given window mechanism.
    pub fn new(kind: ReplayWindowKind) -> Self {
        AntiReplayDefense {
            kind,
            ts_windows: HashMap::new(),
            seq_windows: HashMap::new(),
            rejected: 0,
            accepted: 0,
        }
    }

    /// Timestamp-window defense with the standard 0.5 s CAM freshness bound.
    pub fn timestamp() -> Self {
        Self::new(ReplayWindowKind::Timestamp { max_age: 0.5 })
    }

    /// Sequence-window defense with a 64-entry window.
    pub fn sequence() -> Self {
        Self::new(ReplayWindowKind::Sequence { width: 64 })
    }

    /// Messages rejected as replays/stale.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Messages accepted as fresh.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

impl Defense for AntiReplayDefense {
    fn name(&self) -> &'static str {
        "anti-replay"
    }

    fn filter_rx(
        &mut self,
        receiver_idx: usize,
        _world: &World,
        _delivery: &Delivery,
        envelope: &Envelope,
        now: f64,
    ) -> Result<(), RejectReason> {
        let Ok(msg) = envelope.open_unverified() else {
            // Malformed payloads are not this defense's concern.
            return Ok(());
        };
        let verdict = match self.kind {
            ReplayWindowKind::Timestamp { max_age } => {
                let w = self
                    .ts_windows
                    .entry(receiver_idx)
                    .or_insert_with(|| TimestampWindow::new(max_age));
                w.check(envelope.sender, msg.timestamp(), now)
            }
            ReplayWindowKind::Sequence { width } => {
                if let PlatoonMessage::Beacon(b) = &msg {
                    let w = self
                        .seq_windows
                        .entry(receiver_idx)
                        .or_insert_with(|| SequenceWindow::new(width));
                    w.check(envelope.sender, b.seq)
                } else {
                    // Manoeuvre messages carry no sequence number: fall back
                    // to a timestamp check with a generous bound.
                    let w = self
                        .ts_windows
                        .entry(receiver_idx)
                        .or_insert_with(|| TimestampWindow::new(1.0));
                    w.check(envelope.sender, msg.timestamp(), now)
                }
            }
        };
        if verdict.is_fresh() {
            self.accepted += 1;
            Ok(())
        } else {
            self.rejected += 1;
            Err(match verdict {
                ReplayVerdict::Replayed | ReplayVerdict::Stale => RejectReason::Replayed,
                ReplayVerdict::Fresh => unreachable!("handled above"),
            })
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_attacks::prelude::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str) -> Scenario {
        use platoon_dynamics::profiles::SpeedProfile;
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(60.0)
            .profile(SpeedProfile::BrakeTest {
                cruise: 25.0,
                low: 15.0,
                brake_at: 8.0,
                hold: 5.0,
            })
            .seed(3)
            .build()
    }

    fn run_with(defense: Option<AntiReplayDefense>) -> (RunSummary, Option<u64>) {
        let mut engine = Engine::new(scenario("anti-replay"));
        engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig::default())));
        let has_defense = defense.is_some();
        if let Some(d) = defense {
            engine.add_defense(Box::new(d));
        }
        let s = engine.run();
        let rejected = has_defense.then(|| {
            engine.defenses()[0]
                .as_any()
                .downcast_ref::<AntiReplayDefense>()
                .unwrap()
                .rejected()
        });
        (s, rejected)
    }

    #[test]
    fn timestamp_window_neutralises_replay() {
        let (undefended, _) = run_with(None);
        let (defended, rejected) = run_with(Some(AntiReplayDefense::timestamp()));
        assert!(
            rejected.unwrap() > 500,
            "replays must be filtered: {rejected:?}"
        );
        assert!(
            defended.oscillation_energy < 0.5 * undefended.oscillation_energy,
            "defense must cut oscillation: {} vs {}",
            defended.oscillation_energy,
            undefended.oscillation_energy
        );
    }

    #[test]
    fn sequence_window_neutralises_replay() {
        let (undefended, _) = run_with(None);
        let (defended, rejected) = run_with(Some(AntiReplayDefense::sequence()));
        assert!(rejected.unwrap() > 500);
        assert!(defended.oscillation_energy < 0.5 * undefended.oscillation_energy);
    }

    #[test]
    fn honest_traffic_passes_both_windows() {
        for d in [
            AntiReplayDefense::timestamp(),
            AntiReplayDefense::sequence(),
        ] {
            let mut engine = Engine::new(scenario("honest"));
            engine.add_defense(Box::new(d));
            let s = engine.run();
            assert_eq!(s.collisions, 0);
            // A handful of duplicate deliveries can occur (same beacon via
            // two channels); the platoon must stay fully functional.
            assert!(s.string_stable || s.max_spacing_error < 5.0);
            let def = engine.defenses()[0]
                .as_any()
                .downcast_ref::<AntiReplayDefense>()
                .unwrap();
            assert!(def.accepted() > 1_000);
            let reject_rate = def.rejected() as f64 / (def.accepted() + def.rejected()) as f64;
            assert!(reject_rate < 0.02, "false-positive rate {reject_rate}");
        }
    }
}
