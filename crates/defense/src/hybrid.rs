//! SP-VLC hybrid-communication cross-validation — Table III "Hybrid
//! Communications", after Ucar et al. \[2\].
//!
//! §VI-A.4: "To carry out any action, each member of the platoon must
//! receive both visible light transmission and an 802.11p transmission."
//! An attacker who can inject on the open RF channel cannot inject into a
//! line-of-sight light beam, so requiring *agreement across channels* for
//! safety-critical actions defeats RF-side injection wholesale.
//!
//! Two policies for the F2/F5 ablation:
//!
//! * **AND-validation** ([`HybridPolicy::RequireBoth`]) — a manoeuvre
//!   message is processed only after the same payload has been seen on both
//!   channels within `window` seconds (the SP-VLC rule).
//! * **OR-fallback** ([`HybridPolicy::EitherChannel`]) — any channel
//!   suffices (availability-first: survives jamming, but injectable).

use platoon_crypto::sha256::Sha256;
use platoon_proto::envelope::Envelope;
use platoon_sim::defense::{Defense, RejectReason};
use platoon_sim::world::World;
use platoon_v2x::message::{ChannelKind, Delivery};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;

/// Cross-channel validation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HybridPolicy {
    /// SP-VLC AND-validation: manoeuvres need both channels.
    RequireBoth,
    /// Availability-first: either channel suffices (no cross-check).
    EitherChannel,
}

/// Configuration of the hybrid cross-validation defense.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HybridConfig {
    /// The validation policy.
    pub policy: HybridPolicy,
    /// Seconds within which the matching copy must arrive.
    pub window: f64,
    /// Whether periodic beacons also require both channels (strict SP-VLC)
    /// or only manoeuvre messages do (practical variant — beacons are
    /// validated by the control-level plausibility checks instead).
    pub strict_beacons: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            policy: HybridPolicy::RequireBoth,
            window: 0.25,
            strict_beacons: false,
        }
    }
}

/// The hybrid cross-validation defense.
/// # Examples
///
/// ```
/// use platoon_defense::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(
///     Scenario::builder()
///         .vehicles(4)
///         .comms(CommsMode::HybridVlc)
///         .duration(5.0)
///         .build(),
/// );
/// engine.add_defense(Box::new(HybridConfirmDefense::new(HybridConfig::default())));
/// let summary = engine.run();
/// assert_eq!(summary.collisions, 0);
/// ```
#[derive(Clone, Debug)]
pub struct HybridConfirmDefense {
    config: HybridConfig,
    /// (receiver, payload hash) → (first channel seen, time).
    seen: HashMap<(usize, u64), (ChannelKind, f64)>,
    confirmed: u64,
    rejected: u64,
}

impl HybridConfirmDefense {
    /// Creates the defense.
    pub fn new(config: HybridConfig) -> Self {
        HybridConfirmDefense {
            config,
            seen: HashMap::new(),
            confirmed: 0,
            rejected: 0,
        }
    }

    /// Messages accepted after cross-channel confirmation.
    pub fn confirmed(&self) -> u64 {
        self.confirmed
    }

    /// Messages rejected for lack of confirmation.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    fn payload_key(receiver: usize, payload: &[u8]) -> (usize, u64) {
        (receiver, Sha256::digest(payload).to_u64())
    }
}

impl Defense for HybridConfirmDefense {
    fn name(&self) -> &'static str {
        "hybrid-sp-vlc"
    }

    fn filter_rx(
        &mut self,
        receiver_idx: usize,
        _world: &World,
        delivery: &Delivery,
        envelope: &Envelope,
        now: f64,
    ) -> Result<(), RejectReason> {
        if self.config.policy == HybridPolicy::EitherChannel {
            return Ok(());
        }
        // Beacons pass unless strict mode is on.
        let is_maneuver = envelope
            .open_unverified()
            .map(|m| m.is_maneuver())
            .unwrap_or(false);
        if !is_maneuver && !self.config.strict_beacons {
            return Ok(());
        }

        // Garbage-collect stale entries opportunistically.
        let window = self.config.window;
        self.seen.retain(|_, (_, t)| now - *t <= window + 1.0);

        let key = Self::payload_key(receiver_idx, &delivery.payload);
        match self.seen.get(&key) {
            Some(&(first_channel, t)) if first_channel != delivery.channel && now - t <= window => {
                self.confirmed += 1;
                Ok(())
            }
            _ => {
                // First sighting (or same-channel duplicate): remember it
                // and wait for the cross-channel copy.
                self.seen.insert(key, (delivery.channel, now));
                self.rejected += 1;
                Err(RejectReason::Unconfirmed)
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_attacks::prelude::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str, comms: CommsMode) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(40.0)
            .comms(comms)
            .seed(11)
            .build()
    }

    #[test]
    fn and_validation_blocks_rf_injected_split() {
        let mut engine = Engine::new(scenario("hybrid-split", CommsMode::HybridVlc));
        engine.add_attack(Box::new(FakeManeuverAttack::new(
            FakeManeuverConfig::default(),
        )));
        engine.add_defense(Box::new(HybridConfirmDefense::new(HybridConfig::default())));
        let s = engine.run();
        // The forged split arrives on RF only: never confirmed, never obeyed.
        assert_eq!(
            s.fragmented_fraction, 0.0,
            "RF-only forgery must not split the platoon"
        );
        let d = engine.defenses()[0]
            .as_any()
            .downcast_ref::<HybridConfirmDefense>()
            .unwrap();
        assert!(d.rejected() > 0);
    }

    #[test]
    fn or_fallback_still_falls_to_the_forgery() {
        let mut engine = Engine::new(scenario("hybrid-or", CommsMode::HybridVlc));
        engine.add_attack(Box::new(FakeManeuverAttack::new(
            FakeManeuverConfig::default(),
        )));
        engine.add_defense(Box::new(HybridConfirmDefense::new(HybridConfig {
            policy: HybridPolicy::EitherChannel,
            ..Default::default()
        })));
        let s = engine.run();
        assert!(
            s.fragmented_fraction > 0.5,
            "OR policy provides no injection protection: {}",
            s.fragmented_fraction
        );
    }

    #[test]
    fn legitimate_maneuvers_survive_and_validation() {
        use platoon_crypto::cert::PrincipalId;
        use platoon_proto::messages::PlatoonId;
        use platoon_v2x::message::NodeId;

        let mut engine = Engine::new(scenario("hybrid-join", CommsMode::HybridVlc));
        engine.add_defense(Box::new(HybridConfirmDefense::new(HybridConfig::default())));
        engine.add_attack(Box::new(JoinerAgent::new(
            PrincipalId(700),
            NodeId(700),
            JoinerCredentials::None,
            PlatoonId(1),
            2.0,
        )));
        engine.run();
        // The joiner transmits on RF only (it is outside the optical chain),
        // so its *requests* reach the leader... on one channel. The leader's
        // own responses go out on both. Under strict SP-VLC, out-of-platoon
        // joins need an RF exception — modelled here by the fact that the
        // join request is processed at the leader only after cross-channel
        // confirmation fails; the paper flags exactly this V2I gap as the
        // mechanism's open challenge ("the use of VLC and wireless radio
        // communications between V2I is lacking").
        let agent = engine.attacks()[0]
            .as_any()
            .downcast_ref::<JoinerAgent>()
            .unwrap();
        assert!(
            !agent.outcome().accepted,
            "strict AND-validation blocks single-channel joiners — the open challenge"
        );
    }

    #[test]
    fn beacons_pass_without_strict_mode() {
        let mut engine = Engine::new(scenario("hybrid-beacons", CommsMode::HybridVlc));
        engine.add_defense(Box::new(HybridConfirmDefense::new(HybridConfig::default())));
        let s = engine.run();
        assert_eq!(s.collisions, 0);
        assert!(
            s.leader_tail_pdr > 0.8,
            "beacons must flow: {}",
            s.leader_tail_pdr
        );
    }
}
