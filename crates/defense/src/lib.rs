//! # platoon-defense
//!
//! The security mechanisms of Taylor et al., *"Vehicular Platoon
//! Communication: Cybersecurity Threats and Open Challenges"* (DSN-W 2021),
//! Table III — each implemented as a pluggable
//! [`Defense`](platoon_sim::defense::Defense) for the `platoon-sim` engine:
//!
//! | Module | Table III mechanism | Primary targets |
//! |---|---|---|
//! | [`anti_replay`] | Secret & Public Keys (freshness half) | replay |
//! | [`vpd_ada`] | Control Algorithms (detection, \[10\]) | Sybil, spoofing, impersonation |
//! | [`mitigation`] | Control Algorithms (resilience, \[7\]) | replay, FDI, sensor spoofing |
//! | [`hybrid`] | Hybrid Communications (SP-VLC \[2\]) | jamming, RF injection |
//! | [`rsu`] | Roadside Units (\[8\]) | DoS, Sybil |
//! | [`onboard`] | Securing Onboard Systems | malware |
//! | [`trust`] | Trust management (REPLACE \[6\]) | impersonation, insider FDI |
//!
//! The cryptographic half of the "keys" mechanism lives in the scenario
//! configuration (`AuthMode::{GroupMac, Pki}`) because it changes how every
//! honest node seals its messages, not just how receivers filter.
//!
//! [`registry`] holds Table III as data, each row bound to its module and
//! experiments.
//!
//! # Examples
//!
//! ```
//! use platoon_defense::prelude::*;
//! use platoon_attacks::prelude::*;
//! use platoon_sim::prelude::*;
//!
//! let scenario = Scenario::builder().vehicles(5).duration(20.0).build();
//! let mut engine = Engine::new(scenario);
//! engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
//!     replay_from: 8.0, ..Default::default()
//! })));
//! engine.add_defense(Box::new(AntiReplayDefense::timestamp()));
//! let summary = engine.run();
//! assert!(summary.rejected_messages > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anti_replay;
pub mod hybrid;
pub mod mitigation;
pub mod onboard;
pub mod registry;
pub mod rsu;
pub mod trust;
pub mod vpd_ada;

/// Convenient glob-import of every mechanism and its configuration.
pub mod prelude {
    pub use crate::anti_replay::{AntiReplayDefense, ReplayWindowKind};
    pub use crate::hybrid::{HybridConfig, HybridConfirmDefense, HybridPolicy};
    pub use crate::mitigation::{MitigationConfig, MitigationDefense};
    pub use crate::onboard::{OnboardConfig, OnboardDefense};
    pub use crate::registry::{
        catalog as mechanism_catalog, descriptor as mechanism_descriptor, MechanismDescriptor,
    };
    pub use crate::rsu::{RsuConfig, RsuDefense};
    pub use crate::trust::{TrustConfig, TrustDefense};
    pub use crate::vpd_ada::{VpdAdaConfig, VpdAdaDefense};
}
