//! Position/range-consistency detector: beacon claims cross-checked
//! against the observer's own ranging sensors, physical co-location, and
//! the receive power the claimed position would predict — plus an
//! on-board radar-vs-LiDAR cross-check that flags the observer's *own*
//! sensor stack when its independent ranging paths diverge (GPS/sensor
//! spoofing of the ego vehicle).

use crate::checks;
use crate::detector::{Detector, Evidence};
use crate::fusion::AlertTarget;
use crate::observation::{BeaconObservation, SensorObservation};
use std::collections::BTreeMap;

/// Tuning for the range-consistency detector.
#[derive(Clone, Debug)]
pub struct RangeConfig {
    /// Tolerated |claimed gap − ranged gap|, metres.
    pub gap_tolerance: f64,
    /// Tolerated |claimed closing rate − ranged closing rate|, m/s.
    pub rate_tolerance: f64,
    /// Tolerated |observed RSSI − RSSI expected at claimed position|, dB.
    pub rssi_tolerance_db: f64,
    /// Radar-vs-LiDAR disagreement that counts as a sensor fault, metres.
    pub sensor_disagreement: f64,
    /// Consecutive disagreeing samples before the sensor fault is reported.
    pub sensor_debounce: u32,
}

impl Default for RangeConfig {
    fn default() -> Self {
        RangeConfig {
            gap_tolerance: 6.0,
            rate_tolerance: 3.0,
            rssi_tolerance_db: 18.0,
            sensor_disagreement: 3.0,
            sensor_debounce: 3,
        }
    }
}

/// Streaming range/position-consistency detector.
#[derive(Clone, Debug, Default)]
pub struct RangeConsistencyDetector {
    config: RangeConfig,
    // Per-observer run length of consecutive radar/LiDAR disagreements.
    sensor_streak: BTreeMap<usize, u32>,
}

impl RangeConsistencyDetector {
    /// Creates the detector with the given tuning.
    pub fn new(config: RangeConfig) -> Self {
        RangeConsistencyDetector {
            config,
            sensor_streak: BTreeMap::new(),
        }
    }
}

impl Detector for RangeConsistencyDetector {
    fn name(&self) -> &'static str {
        "range"
    }

    fn clone_box(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }

    fn observe_beacon(&mut self, obs: &BeaconObservation, sink: &mut Vec<Evidence>) {
        if obs.ctx.sender_is_predecessor {
            if let Some((measured_gap, measured_rate)) = obs.ctx.ranged_gap {
                let claimed_gap = obs.claim.position - obs.claim.length - obs.ctx.observer_position;
                let claimed_rate = obs.claim.speed - obs.ctx.observer_speed;
                if checks::ranging_mismatch(
                    claimed_gap,
                    measured_gap,
                    claimed_rate,
                    measured_rate,
                    self.config.gap_tolerance,
                    self.config.rate_tolerance,
                ) {
                    sink.push(Evidence {
                        time: obs.time,
                        target: AlertTarget::Sender(obs.sender),
                        detector: self.name(),
                        strength: 0.5,
                    });
                }
            }
        }
        if obs.ctx.colocation_conflict {
            sink.push(Evidence {
                time: obs.time,
                target: AlertTarget::Sender(obs.sender),
                detector: self.name(),
                strength: 0.7,
            });
        }
        if let Some(expected) = obs.ctx.expected_rssi_dbm {
            if checks::rssi_anomaly(expected, obs.rssi_dbm, self.config.rssi_tolerance_db) {
                sink.push(Evidence {
                    time: obs.time,
                    target: AlertTarget::Sender(obs.sender),
                    detector: self.name(),
                    strength: 0.5,
                });
            }
        }
    }

    fn observe_sensors(&mut self, obs: &SensorObservation, sink: &mut Vec<Evidence>) {
        let streak = self.sensor_streak.entry(obs.observer).or_insert(0);
        if (obs.radar_range - obs.lidar_range).abs() > self.config.sensor_disagreement {
            *streak += 1;
            if *streak >= self.config.sensor_debounce {
                sink.push(Evidence {
                    time: obs.time,
                    target: AlertTarget::Sender(obs.observer_principal),
                    detector: self.name(),
                    strength: 0.6,
                });
            }
        } else {
            *streak = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_crypto::cert::PrincipalId;

    fn ranged(time: f64, claimed_position: f64, measured_gap: f64) -> BeaconObservation {
        let mut obs = BeaconObservation::plausible(time, PrincipalId(1), 2);
        obs.claim.position = claimed_position;
        obs.ctx.observer_position = 50.0;
        obs.ctx.observer_speed = 25.0;
        obs.ctx.sender_is_predecessor = true;
        obs.ctx.ranged_gap = Some((measured_gap, 0.0));
        obs
    }

    #[test]
    fn consistent_ranging_is_silent() {
        let mut det = RangeConsistencyDetector::default();
        let mut sink = Vec::new();
        // Claimed gap = 90 - 16.5 - 50 = 23.5 m, radar says 24 m: fine.
        det.observe_beacon(&ranged(1.0, 90.0, 24.0), &mut sink);
        assert!(sink.is_empty());
    }

    #[test]
    fn gap_lie_emits_evidence() {
        let mut det = RangeConsistencyDetector::default();
        let mut sink = Vec::new();
        // Claimed gap 23.5 m but radar measures 9 m — a >6 m lie.
        det.observe_beacon(&ranged(1.0, 90.0, 9.0), &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].detector, "range");
    }

    #[test]
    fn colocation_and_rssi_anomalies_emit() {
        let mut det = RangeConsistencyDetector::default();
        let mut sink = Vec::new();
        let mut obs = BeaconObservation::plausible(0.5, PrincipalId(7), 0);
        obs.ctx.colocation_conflict = true;
        obs.ctx.expected_rssi_dbm = Some(-55.0);
        obs.rssi_dbm = -95.0; // 40 dB off the claimed position's power
        det.observe_beacon(&obs, &mut sink);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[0].strength, 0.7);
        assert_eq!(sink[1].strength, 0.5);
    }

    #[test]
    fn sensor_disagreement_needs_debounce() {
        let mut det = RangeConsistencyDetector::default();
        let mut sink = Vec::new();
        let sample = |t: f64, lidar: f64| SensorObservation {
            time: t,
            observer: 2,
            observer_principal: PrincipalId(3),
            radar_range: 20.0,
            lidar_range: lidar,
        };
        det.observe_sensors(&sample(0.0, 28.0), &mut sink);
        det.observe_sensors(&sample(0.1, 28.0), &mut sink);
        assert!(sink.is_empty(), "two samples are below the debounce");
        det.observe_sensors(&sample(0.2, 28.0), &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].target, AlertTarget::Sender(PrincipalId(3)));
        // A clean sample resets the streak.
        det.observe_sensors(&sample(0.3, 20.5), &mut sink);
        det.observe_sensors(&sample(0.4, 28.0), &mut sink);
        assert_eq!(sink.len(), 1);
    }
}
