//! What detectors see: the observation types the pipeline consumes.
//!
//! Observations carry exactly what a real on-board IDS has at reception
//! time — the message's claims and credential metadata, the physical-layer
//! measurements (RSSI, channel), and the observer's own local context
//! (ranging to its predecessor, the signal power the claimed position
//! would predict). Nothing here requires simulator internals, which keeps
//! the detectors replayable against recorded traces.

use platoon_crypto::cert::PrincipalId;
use platoon_v2x::message::ChannelKind;
use serde::{Deserialize, Serialize};

/// Credential metadata of a received envelope — what signature/pseudonym
/// material the identity detector can reason over without any keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthMeta {
    /// No authenticator.
    Plain,
    /// HMAC under the shared platoon group key.
    GroupMac,
    /// Encrypt-then-MAC under the shared group key.
    Encrypted,
    /// Schnorr signature plus certificate.
    Signed {
        /// The certificate's certified subject.
        subject: PrincipalId,
    },
}

impl AuthMeta {
    /// Coarse strength ranking, for downgrade detection.
    pub fn rank(&self) -> u8 {
        match self {
            AuthMeta::Plain => 0,
            AuthMeta::GroupMac => 1,
            AuthMeta::Encrypted => 2,
            AuthMeta::Signed { .. } => 3,
        }
    }
}

/// The kinematic content of a beacon.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeaconClaim {
    /// Claimed road position, metres.
    pub position: f64,
    /// Claimed speed, m/s.
    pub speed: f64,
    /// Claimed acceleration, m/s².
    pub accel: f64,
    /// Claimed vehicle length, metres.
    pub length: f64,
    /// Beacon sequence number.
    pub seq: u64,
    /// Sender-claimed generation timestamp, seconds.
    pub timestamp: f64,
}

/// The observer's local context at reception time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObserverContext {
    /// Observer vehicle index (stable within a run).
    pub observer: usize,
    /// The observer's own identity.
    pub observer_principal: PrincipalId,
    /// The observer's own road position, metres.
    pub observer_position: f64,
    /// The observer's own speed, m/s.
    pub observer_speed: f64,
    /// Whether the claimed sender is the observer's physical predecessor.
    pub sender_is_predecessor: bool,
    /// The observer's own ranging to its predecessor (gap m, closing-rate
    /// m/s), when it has a predecessor in range.
    pub ranged_gap: Option<(f64, f64)>,
    /// Median receive power (dBm) expected if the sender really stood at
    /// its claimed position (RF channels; `None` for VLC).
    pub expected_rssi_dbm: Option<f64>,
    /// Whether the claimed position overlaps road space physically occupied
    /// by another known vehicle.
    pub colocation_conflict: bool,
}

impl ObserverContext {
    /// A neutral context for trace replay and synthetic streams.
    pub fn anonymous(observer: usize) -> Self {
        ObserverContext {
            observer,
            observer_principal: PrincipalId(u64::MAX),
            observer_position: 0.0,
            observer_speed: 0.0,
            sender_is_predecessor: false,
            ranged_gap: None,
            expected_rssi_dbm: None,
            colocation_conflict: false,
        }
    }
}

/// A received beacon, as one observer saw it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeaconObservation {
    /// Reception time, seconds.
    pub time: f64,
    /// Claimed application-level sender.
    pub sender: PrincipalId,
    /// The kinematic claims.
    pub claim: BeaconClaim,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Channel the frame arrived on.
    pub channel: ChannelKind,
    /// Credential metadata.
    pub auth: AuthMeta,
    /// The observer's local context.
    pub ctx: ObserverContext,
}

impl BeaconObservation {
    /// A physically plausible observation for tests and benchmarks: the
    /// sender cruises at 25 m/s from position 100 m, beaconing at 10 Hz
    /// with a self-consistent claim stream and nominal RSSI.
    pub fn plausible(time: f64, sender: PrincipalId, observer: usize) -> Self {
        BeaconObservation {
            time,
            sender,
            claim: BeaconClaim {
                position: 100.0 + 25.0 * time,
                speed: 25.0,
                accel: 0.0,
                length: 16.5,
                seq: (time / 0.1).round() as u64 + 1,
                timestamp: time,
            },
            rssi_dbm: -60.0,
            channel: ChannelKind::Dsrc,
            auth: AuthMeta::Plain,
            ctx: ObserverContext::anonymous(observer),
        }
    }
}

/// The kind of a non-beacon (manoeuvre) message.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ControlKind {
    /// A join request, with the position it claims to join from.
    JoinRequest {
        /// Claimed current position of the requester, metres.
        claimed_position: f64,
    },
    /// A leave request.
    LeaveRequest,
    /// A split command.
    SplitCommand,
    /// A gap-open command.
    GapOpen,
    /// Any other protocol message.
    Other,
}

/// A received manoeuvre message, as one observer saw it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlObservation {
    /// Reception time, seconds.
    pub time: f64,
    /// Claimed application-level sender.
    pub sender: PrincipalId,
    /// What kind of message.
    pub kind: ControlKind,
    /// Sender-claimed generation timestamp, seconds.
    pub timestamp: f64,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Channel the frame arrived on.
    pub channel: ChannelKind,
    /// Credential metadata.
    pub auth: AuthMeta,
    /// The observer's local context.
    pub ctx: ObserverContext,
}

/// A received over-the-air message observation of either kind, in arrival
/// order. Lets callers batch a whole delivery round's ingest into one
/// pipeline call ([`crate::pipeline::Pipeline::ingest_messages`]) while
/// preserving the interleaving the detectors' stateful tracks depend on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MessageObservation {
    /// A received beacon.
    Beacon(BeaconObservation),
    /// A received manoeuvre message.
    Control(ControlObservation),
}

/// One on-board sensor cross-check sample: independent ranging paths
/// (radar vs LiDAR) measured by the same vehicle at the same instant.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensorObservation {
    /// Measurement time, seconds.
    pub time: f64,
    /// Observing vehicle index.
    pub observer: usize,
    /// The observer's own identity (the suspect if its sensors disagree).
    pub observer_principal: PrincipalId,
    /// Radar range to the predecessor, metres.
    pub radar_range: f64,
    /// LiDAR range to the predecessor, metres.
    pub lidar_range: f64,
}

/// Per-step context for time-driven detectors (silence monitoring).
#[derive(Clone, Copy, Debug)]
pub struct TickContext<'a> {
    /// Current time, seconds.
    pub now: f64,
    /// Nominal beacon interval, seconds.
    pub comm_step: f64,
    /// Identities expected to beacon (current platoon members), ordered.
    pub members: &'a [PrincipalId],
    /// Observer indices that are operational this step, ordered.
    pub observers: &'a [usize],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auth_rank_orders_schemes() {
        assert!(AuthMeta::Plain.rank() < AuthMeta::GroupMac.rank());
        assert!(
            AuthMeta::Encrypted.rank()
                < AuthMeta::Signed {
                    subject: PrincipalId(1)
                }
                .rank()
        );
    }

    #[test]
    fn plausible_stream_is_self_consistent() {
        use crate::checks::{claim_faults, ClaimSnapshot, KinematicLimits};
        let limits = KinematicLimits::default();
        let mut prev: Option<ClaimSnapshot> = None;
        for step in 0..50 {
            let obs = BeaconObservation::plausible(step as f64 * 0.1, PrincipalId(3), 0);
            let snap = ClaimSnapshot {
                time: obs.time,
                position: obs.claim.position,
                speed: obs.claim.speed,
                accel: obs.claim.accel,
            };
            assert!(claim_faults(prev, snap, &limits).is_empty());
            prev = Some(snap);
        }
    }
}
