//! Replay / freshness detector: stale timestamps, sequence and timestamp
//! regressions, and exact duplicates.
//!
//! A replay attacker retransmits verbatim recorded frames, so the claimed
//! generation timestamp lags reception time by the recording delay and the
//! sequence numbers run backwards relative to the victim's live stream.
//! Both trip here. Exact duplicates (same sequence *and* timestamp) are
//! scored weakly — multi-channel delivery duplicates frames legitimately,
//! so only a sustained duplicate stream should convict.

use crate::detector::{Detector, Evidence};
use crate::fusion::AlertTarget;
use crate::observation::{BeaconObservation, ControlObservation};
use std::collections::BTreeMap;

/// Tuning for the freshness detector.
#[derive(Clone, Debug)]
pub struct FreshnessConfig {
    /// Maximum tolerated age of a claimed generation timestamp, seconds.
    pub max_age: f64,
    /// Evidence strength for a stale or regressed frame.
    pub violation_strength: f64,
    /// Evidence strength for an exact duplicate (weak by design).
    pub duplicate_strength: f64,
}

impl Default for FreshnessConfig {
    fn default() -> Self {
        FreshnessConfig {
            max_age: 1.0,
            violation_strength: 0.7,
            duplicate_strength: 0.15,
        }
    }
}

/// Streaming replay/freshness detector.
#[derive(Clone, Debug, Default)]
pub struct FreshnessDetector {
    config: FreshnessConfig,
    // Highest (seq, timestamp) seen per (observer, sender).
    newest: BTreeMap<(usize, u64), (u64, f64)>,
}

impl FreshnessDetector {
    /// Creates the detector with the given tuning.
    pub fn new(config: FreshnessConfig) -> Self {
        FreshnessDetector {
            config,
            newest: BTreeMap::new(),
        }
    }

    fn push(
        &self,
        time: f64,
        sender: platoon_crypto::cert::PrincipalId,
        strength: f64,
        sink: &mut Vec<Evidence>,
    ) {
        sink.push(Evidence {
            time,
            target: AlertTarget::Sender(sender),
            detector: "freshness",
            strength,
        });
    }
}

impl Detector for FreshnessDetector {
    fn name(&self) -> &'static str {
        "freshness"
    }

    fn clone_box(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }

    fn observe_beacon(&mut self, obs: &BeaconObservation, sink: &mut Vec<Evidence>) {
        let cfg = self.config.clone();
        if obs.time - obs.claim.timestamp > cfg.max_age {
            self.push(obs.time, obs.sender, cfg.violation_strength, sink);
        }
        let key = (obs.ctx.observer, obs.sender.0);
        if let Some(&(seq, ts)) = self.newest.get(&key) {
            if obs.claim.seq == seq && obs.claim.timestamp == ts {
                self.push(obs.time, obs.sender, cfg.duplicate_strength, sink);
            } else if obs.claim.seq < seq || obs.claim.timestamp < ts - 1e-9 {
                self.push(obs.time, obs.sender, cfg.violation_strength, sink);
            }
        }
        let entry = self.newest.entry(key).or_insert((0, f64::NEG_INFINITY));
        entry.0 = entry.0.max(obs.claim.seq);
        entry.1 = entry.1.max(obs.claim.timestamp);
    }

    fn observe_control(&mut self, obs: &ControlObservation, sink: &mut Vec<Evidence>) {
        if obs.time - obs.timestamp > self.config.max_age {
            self.push(obs.time, obs.sender, self.config.violation_strength, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_crypto::cert::PrincipalId;

    #[test]
    fn live_stream_is_fresh() {
        let mut det = FreshnessDetector::default();
        let mut sink = Vec::new();
        for step in 0..100u64 {
            let obs = BeaconObservation::plausible(step as f64 * 0.1, PrincipalId(1), 0);
            det.observe_beacon(&obs, &mut sink);
        }
        assert!(sink.is_empty());
    }

    #[test]
    fn replayed_recording_is_stale_and_regressed() {
        let mut det = FreshnessDetector::default();
        let mut sink = Vec::new();
        // Live frames up to t=10…
        for step in 0..100u64 {
            det.observe_beacon(
                &BeaconObservation::plausible(step as f64 * 0.1, PrincipalId(1), 0),
                &mut sink,
            );
        }
        // …then a frame recorded at t=2.0 is replayed at t=10.0: stale
        // (8 s old) and both seq and timestamp regress.
        let mut replay = BeaconObservation::plausible(2.0, PrincipalId(1), 0);
        replay.time = 10.0;
        det.observe_beacon(&replay, &mut sink);
        assert_eq!(sink.len(), 2);
        assert!(sink.iter().all(|e| e.strength == 0.7));
    }

    #[test]
    fn exact_duplicate_is_weak_evidence() {
        let mut det = FreshnessDetector::default();
        let mut sink = Vec::new();
        let obs = BeaconObservation::plausible(0.5, PrincipalId(1), 0);
        det.observe_beacon(&obs, &mut sink);
        det.observe_beacon(&obs, &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].strength, 0.15);
    }

    #[test]
    fn stale_control_message_is_flagged() {
        let mut det = FreshnessDetector::default();
        let mut sink = Vec::new();
        let base = BeaconObservation::plausible(10.0, PrincipalId(4), 0);
        let control = ControlObservation {
            time: 10.0,
            sender: base.sender,
            kind: crate::observation::ControlKind::JoinRequest {
                claimed_position: 50.0,
            },
            timestamp: 3.0,
            rssi_dbm: base.rssi_dbm,
            channel: base.channel,
            auth: base.auth,
            ctx: base.ctx,
        };
        det.observe_control(&control, &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].strength, 0.7);
    }
}
