//! # platoon-detect
//!
//! The online misbehavior-detection subsystem: a streaming pipeline that
//! consumes the beacon/manoeuvre/sensor observations each vehicle already
//! sees and emits timestamped, attributed alerts — the runtime *detection*
//! layer the paper's open challenges (§VI-B) note is missing from platoon
//! deployments.
//!
//! The pipeline is deliberately decoupled from the simulator: it scores
//! [`observation`]s, not world state, so the same detectors run against a
//! live engine (via the `platoon-sim` hooks), a recorded trace, or the
//! synthetic streams the throughput benchmarks use.
//!
//! * [`observation`] — what a detector sees: beacon claims, manoeuvre
//!   messages and on-board sensor cross-checks, each with the observer's
//!   local context (own ranging, expected signal strength, …).
//! * [`checks`] — the pure plausibility primitives (kinematic consistency,
//!   ranging mismatch, RSSI anomaly) shared with `platoon-defense`, so the
//!   workspace has exactly one detection vocabulary.
//! * [`detector`] — the [`Detector`](detector::Detector) trait plus the
//!   [`Evidence`](detector::Evidence) currency detectors emit.
//! * The five stock detectors: [`kinematic`], [`range`], [`frequency`],
//!   [`identity`], [`freshness`].
//! * [`fusion`] — weighted per-sender evidence aggregation into verdicts
//!   with hysteresis; raises [`Alert`](fusion::Alert)s.
//! * [`pipeline`] — the assembled bank: detectors + fusion + alert log,
//!   with the `default`/`strict` configurations the Table-IV experiment
//!   sweeps.
//! * [`features`] — the shared per-beacon feature vector the ML dataset
//!   exporter renders and the learned detector consumes.
//! * [`learned`] — from-scratch logistic regression (deterministic SGD)
//!   wrapped as a [`Detector`](detector::Detector): the learned baseline
//!   scored head-to-head against the rule-based bank.
//!
//! # Examples
//!
//! Score a short synthetic stream — an identity whose claims teleport:
//!
//! ```
//! use platoon_detect::prelude::*;
//! use platoon_crypto::cert::PrincipalId;
//!
//! let mut pipeline = Pipeline::new(PipelineConfig::default_profile());
//! for step in 0..40u64 {
//!     let t = step as f64 * 0.1;
//!     let mut obs = BeaconObservation::plausible(t, PrincipalId(7), 0);
//!     if step >= 20 {
//!         obs.claim.position += 250.0; // teleport mid-stream…
//!         obs.claim.accel = 15.0; // …with an impossible accel claim
//!     }
//!     pipeline.observe_beacon(&obs);
//! }
//! let alerts = pipeline.take_alerts();
//! assert!(!alerts.is_empty());
//! assert_eq!(alerts[0].target, AlertTarget::Sender(PrincipalId(7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod detector;
pub mod features;
pub mod frequency;
pub mod freshness;
pub mod fusion;
pub mod identity;
pub mod kinematic;
pub mod learned;
pub mod observation;
pub mod pipeline;
pub mod range;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::checks::{ClaimFault, ClaimSnapshot, KinematicLimits};
    pub use crate::detector::{Detector, Evidence};
    pub use crate::features::{FeatureExtractor, FEATURE_NAMES, NUM_FEATURES};
    pub use crate::frequency::{FrequencyConfig, FrequencyDetector};
    pub use crate::freshness::{FreshnessConfig, FreshnessDetector};
    pub use crate::fusion::{Alert, AlertTarget, Fusion, FusionConfig};
    pub use crate::identity::{IdentityConfig, IdentityDetector};
    pub use crate::kinematic::{KinematicConfig, KinematicDetector};
    pub use crate::learned::{LearnedConfig, LearnedDetector, LogisticModel, TrainConfig};
    pub use crate::observation::{
        AuthMeta, BeaconClaim, BeaconObservation, ControlKind, ControlObservation,
        MessageObservation, ObserverContext, SensorObservation, TickContext,
    };
    pub use crate::pipeline::{Pipeline, PipelineConfig};
    pub use crate::range::{RangeConfig, RangeConsistencyDetector};
}
