//! Per-beacon feature vectors — the shared vocabulary of the ML dataset
//! exporter and the learned detector.
//!
//! Each received beacon is rendered into a fixed-width numeric vector
//! combining the claim itself (kinematics, freshness), the physical layer
//! (RSSI and its residual against the claimed position), the observer's
//! own sensing (ranging residual), and short per-(observer, sender)
//! history (inter-arrival time, sequence stride, dead-reckoning jump).
//! The extractor is a pure function of the observation stream in arrival
//! order, so the same rows come out of a live engine tap, a recorded
//! trace, or a synthetic benchmark stream — and out of any worker count.

use crate::observation::{AuthMeta, BeaconObservation};
use std::collections::BTreeMap;

/// Number of features per beacon row.
pub const NUM_FEATURES: usize = 14;

/// Feature names, index-aligned with [`FeatureExtractor::extract`] output
/// and with the dataset's columnar layout.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "inter_arrival_s",
    "claimed_speed_mps",
    "claimed_accel_mps2",
    "speed_delta_mps",
    "range_m",
    "rssi_dbm",
    "rssi_residual_db",
    "freshness_delta_s",
    "seq_stride",
    "claim_jump_m",
    "gap_residual_m",
    "colocation_conflict",
    "auth_rank",
    "auth_subject_mismatch",
];

/// Short history of one (observer, sender) stream.
#[derive(Clone, Copy, Debug)]
struct SenderTrack {
    last_time: f64,
    last_seq: u64,
    last_position: f64,
    last_speed: f64,
}

/// Streaming per-(observer, sender) feature extractor.
#[derive(Clone, Debug, Default)]
pub struct FeatureExtractor {
    tracks: BTreeMap<(usize, u64), SenderTrack>,
}

impl FeatureExtractor {
    /// A fresh extractor with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders one beacon into its feature vector and advances the
    /// per-(observer, sender) track. History-dependent features use
    /// sentinel values on a stream's first beacon (inter-arrival −1,
    /// sequence stride 1, jump 0).
    pub fn extract(&mut self, obs: &BeaconObservation) -> [f64; NUM_FEATURES] {
        let key = (obs.ctx.observer, obs.sender.0);
        let prev = self.tracks.get(&key).copied();
        let mut x = [0.0; NUM_FEATURES];
        x[0] = prev.map(|p| obs.time - p.last_time).unwrap_or(-1.0);
        x[1] = obs.claim.speed;
        x[2] = obs.claim.accel;
        x[3] = obs.claim.speed - obs.ctx.observer_speed;
        x[4] = obs.claim.position - obs.ctx.observer_position;
        x[5] = obs.rssi_dbm;
        x[6] = obs
            .ctx
            .expected_rssi_dbm
            .map(|e| obs.rssi_dbm - e)
            .unwrap_or(0.0);
        x[7] = obs.time - obs.claim.timestamp;
        x[8] = prev
            .map(|p| obs.claim.seq as f64 - p.last_seq as f64)
            .unwrap_or(1.0);
        x[9] = prev
            .map(|p| {
                let dt = obs.time - p.last_time;
                (obs.claim.position - (p.last_position + p.last_speed * dt)).abs()
            })
            .unwrap_or(0.0);
        x[10] = match (obs.ctx.sender_is_predecessor, obs.ctx.ranged_gap) {
            (true, Some((gap, _))) => {
                ((obs.claim.position - obs.ctx.observer_position).abs() - obs.claim.length) - gap
            }
            _ => 0.0,
        };
        x[11] = if obs.ctx.colocation_conflict {
            1.0
        } else {
            0.0
        };
        x[12] = obs.auth.rank() as f64;
        x[13] = match obs.auth {
            AuthMeta::Signed { subject } if subject != obs.sender => 1.0,
            _ => 0.0,
        };
        self.tracks.insert(
            key,
            SenderTrack {
                last_time: obs.time,
                last_seq: obs.claim.seq,
                last_position: obs.claim.position,
                last_speed: obs.claim.speed,
            },
        );
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_crypto::cert::PrincipalId;

    #[test]
    fn plausible_stream_yields_nominal_features() {
        let mut ex = FeatureExtractor::new();
        let first = ex.extract(&BeaconObservation::plausible(0.0, PrincipalId(1), 0));
        assert_eq!(first[0], -1.0, "first beacon has no inter-arrival");
        assert_eq!(first[8], 1.0, "first beacon has unit seq stride");
        for step in 1..20u64 {
            let t = step as f64 * 0.1;
            let x = ex.extract(&BeaconObservation::plausible(t, PrincipalId(1), 0));
            assert!((x[0] - 0.1).abs() < 1e-9, "10 Hz inter-arrival");
            assert!((x[8] - 1.0).abs() < 1e-9, "consecutive seq");
            assert!(x[9].abs() < 1e-9, "self-consistent dead reckoning");
            assert!((x[7]).abs() < 1e-9, "fresh timestamps");
        }
    }

    #[test]
    fn teleport_and_replay_show_up_in_the_vector() {
        let mut ex = FeatureExtractor::new();
        for step in 0..10u64 {
            ex.extract(&BeaconObservation::plausible(
                step as f64 * 0.1,
                PrincipalId(1),
                0,
            ));
        }
        let mut obs = BeaconObservation::plausible(1.0, PrincipalId(1), 0);
        obs.claim.position += 200.0; // teleport
        obs.claim.timestamp = 0.2; // stale (replayed) generation stamp
        let x = ex.extract(&obs);
        assert!(x[9] > 100.0, "claim jump must be visible: {}", x[9]);
        assert!(x[7] > 0.5, "freshness delta must be visible: {}", x[7]);
    }

    #[test]
    fn streams_are_tracked_per_observer_and_sender() {
        let mut ex = FeatureExtractor::new();
        ex.extract(&BeaconObservation::plausible(0.0, PrincipalId(1), 0));
        // A different observer of the same sender starts its own history.
        let x = ex.extract(&BeaconObservation::plausible(0.5, PrincipalId(1), 1));
        assert_eq!(x[0], -1.0);
    }
}
