//! The [`Detector`] trait and the [`Evidence`] currency detectors emit.

use crate::fusion::AlertTarget;
use crate::observation::{BeaconObservation, ControlObservation, SensorObservation, TickContext};

/// One unit of suspicion emitted by a detector: who it implicates, how
/// strongly, and which detector said so. Fusion aggregates these.
#[derive(Clone, Debug, PartialEq)]
pub struct Evidence {
    /// When the suspicious observation was made, seconds.
    pub time: f64,
    /// Who the evidence implicates.
    pub target: AlertTarget,
    /// Which detector produced it (stable name, used for fusion weights).
    pub detector: &'static str,
    /// Suspicion strength in `[0, 1]`; fusion multiplies by the detector's
    /// weight and accumulates with decay.
    pub strength: f64,
}

/// A streaming misbehavior detector.
///
/// Detectors are push-fed observations in reception order and emit
/// [`Evidence`] into the supplied sink. They keep whatever per-sender
/// state they need internally; determinism requires that the evidence
/// order depend only on the observation order (never on hash-map
/// iteration).
pub trait Detector: std::fmt::Debug {
    /// Stable detector name, referenced by fusion weights and alerts.
    fn name(&self) -> &'static str;

    /// Feed one received beacon.
    fn observe_beacon(&mut self, obs: &BeaconObservation, sink: &mut Vec<Evidence>) {
        let _ = (obs, sink);
    }

    /// Feed one received manoeuvre message.
    fn observe_control(&mut self, obs: &ControlObservation, sink: &mut Vec<Evidence>) {
        let _ = (obs, sink);
    }

    /// Feed one on-board sensor cross-check sample.
    fn observe_sensors(&mut self, obs: &SensorObservation, sink: &mut Vec<Evidence>) {
        let _ = (obs, sink);
    }

    /// Advance time once per simulation step — where silence-based
    /// detectors (who did we *not* hear from?) do their work.
    fn tick(&mut self, ctx: &TickContext<'_>, sink: &mut Vec<Evidence>) {
        let _ = (ctx, sink);
    }

    /// The driving regime changed: `label` is the new phase's name.
    /// Regime-aware detectors swap in per-phase threshold sets here; the
    /// default ignores the notification (regime-oblivious tuning).
    fn on_regime(&mut self, label: &str) {
        let _ = label;
    }

    /// Clones the detector (including all per-sender state) into a fresh
    /// box, for engine snapshots. `None` means the detector does not
    /// support snapshotting; pipelines carrying it cannot be checkpointed.
    fn clone_box(&self) -> Option<Box<dyn Detector>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_crypto::cert::PrincipalId;

    #[derive(Debug)]
    struct Null;
    impl Detector for Null {
        fn name(&self) -> &'static str {
            "null"
        }
    }

    #[test]
    fn default_hooks_emit_nothing() {
        let mut d = Null;
        let mut sink = Vec::new();
        d.observe_beacon(
            &BeaconObservation::plausible(0.0, PrincipalId(1), 0),
            &mut sink,
        );
        d.tick(
            &TickContext {
                now: 0.0,
                comm_step: 0.1,
                members: &[],
                observers: &[],
            },
            &mut sink,
        );
        assert!(sink.is_empty());
    }
}
