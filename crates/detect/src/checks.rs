//! Pure plausibility primitives — the one detection vocabulary shared by
//! the streaming detectors here and the `platoon-defense` mechanisms
//! (REPLACE-style trust, VPD-ADA) that predate this crate.
//!
//! Everything in this module is a pure function of its inputs: no state, no
//! randomness, no world access. Detectors and defenses layer their own
//! state (reputations, violation debouncing, fusion scores) on top.

use serde::{Deserialize, Serialize};

/// Physical-plausibility limits for beacon claims.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KinematicLimits {
    /// Maximum physically plausible acceleration magnitude, m/s².
    pub max_accel: f64,
    /// Position-consistency tolerance in metres beyond dead-reckoning.
    /// The effective bound grows by 2 m per second of claim gap.
    pub position_tolerance: f64,
    /// Maximum plausible road speed, m/s (trucks; generous).
    pub max_speed: f64,
    /// If set: tolerated gap between the *claimed* acceleration and the
    /// acceleration *implied* by consecutive speed claims, m/s². `None`
    /// disables the cross-check (the legacy trust-manager behaviour).
    pub accel_mismatch: Option<f64>,
}

impl Default for KinematicLimits {
    fn default() -> Self {
        KinematicLimits {
            max_accel: 10.0,
            position_tolerance: 8.0,
            max_speed: 60.0,
            accel_mismatch: Some(2.5),
        }
    }
}

/// One kinematic claim extracted from a beacon.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClaimSnapshot {
    /// Reception time of the claim, seconds.
    pub time: f64,
    /// Claimed road position, metres.
    pub position: f64,
    /// Claimed speed, m/s.
    pub speed: f64,
    /// Claimed acceleration, m/s².
    pub accel: f64,
}

/// A way a claim (or a claim pair) violates physical plausibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClaimFault {
    /// The claimed acceleration magnitude exceeds the physical limit.
    ImpossibleAccel,
    /// The claimed speed exceeds any plausible road speed (or is negative).
    ImpossibleSpeed,
    /// Consecutive speed claims imply an acceleration beyond the limit.
    ImpliedAccel,
    /// The claimed position teleports beyond dead-reckoning tolerance.
    Teleport,
    /// Two claims for the same instant disagree materially — the signature
    /// of a second transmitter using the same identity (impersonation).
    Contradiction,
    /// The claimed acceleration disagrees with the acceleration implied by
    /// the sender's own consecutive speed claims.
    AccelMismatch,
}

/// Evaluates a claim (optionally against the previous claim from the same
/// identity) and returns every plausibility fault, in a fixed order.
///
/// With `prev = None` only the single-claim checks run (acceleration and
/// speed limits). The pairwise checks reproduce the REPLACE-style trust
/// manager's consistency rules: dead-reckoned teleport, implied
/// acceleration, and the same-instant contradiction test.
pub fn claim_faults(
    prev: Option<ClaimSnapshot>,
    next: ClaimSnapshot,
    limits: &KinematicLimits,
) -> Vec<ClaimFault> {
    let mut faults = Vec::new();
    if next.accel.abs() > limits.max_accel {
        faults.push(ClaimFault::ImpossibleAccel);
    }
    if next.speed > limits.max_speed || next.speed < 0.0 {
        faults.push(ClaimFault::ImpossibleSpeed);
    }
    let Some(prev) = prev else {
        return faults;
    };
    let dt = next.time - prev.time;
    if dt > 1e-6 {
        let predicted = prev.position + prev.speed * dt;
        if (next.position - predicted).abs() > limits.position_tolerance + 2.0 * dt {
            faults.push(ClaimFault::Teleport);
        }
        let implied = (next.speed - prev.speed) / dt;
        if implied.abs() > limits.max_accel {
            faults.push(ClaimFault::ImpliedAccel);
        }
        if let Some(tol) = limits.accel_mismatch {
            // The claim stream's own story must cohere: the acceleration the
            // sender *claims* should match what its speed claims *imply*.
            // (Insider FDI with a plausible-magnitude accel lie trips this.)
            let claimed_mean = 0.5 * (prev.accel + next.accel);
            if (claimed_mean - implied).abs() > tol {
                faults.push(ClaimFault::AccelMismatch);
            }
        }
    } else if (next.speed - prev.speed).abs() > 1.0 || (next.position - prev.position).abs() > 5.0 {
        faults.push(ClaimFault::Contradiction);
    }
    faults
}

/// Whether a claimed gap/closing-rate pair disagrees with the observer's
/// own ranging beyond tolerance — the VPD-ADA ranging cross-check.
pub fn ranging_mismatch(
    claimed_gap: f64,
    measured_gap: f64,
    claimed_rate: f64,
    measured_rate: f64,
    gap_tolerance: f64,
    rate_tolerance: f64,
) -> bool {
    (claimed_gap - measured_gap).abs() > gap_tolerance
        || (claimed_rate - measured_rate).abs() > rate_tolerance
}

/// Whether a received signal strength is inconsistent with the power
/// expected for the position the frame's content claims (Convoy-style
/// physical context verification).
pub fn rssi_anomaly(expected_dbm: f64, observed_dbm: f64, tolerance_db: f64) -> bool {
    (observed_dbm - expected_dbm).abs() > tolerance_db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(time: f64, position: f64, speed: f64, accel: f64) -> ClaimSnapshot {
        ClaimSnapshot {
            time,
            position,
            speed,
            accel,
        }
    }

    #[test]
    fn clean_stream_has_no_faults() {
        let limits = KinematicLimits::default();
        let a = claim(0.0, 100.0, 25.0, 0.0);
        let b = claim(0.1, 102.5, 25.0, 0.0);
        assert!(claim_faults(None, a, &limits).is_empty());
        assert!(claim_faults(Some(a), b, &limits).is_empty());
    }

    #[test]
    fn impossible_accel_flags_without_history() {
        let limits = KinematicLimits::default();
        let faults = claim_faults(None, claim(0.0, 0.0, 25.0, -15.0), &limits);
        assert_eq!(faults, vec![ClaimFault::ImpossibleAccel]);
    }

    #[test]
    fn teleport_and_implied_accel_flag_between_claims() {
        let limits = KinematicLimits::default();
        let a = claim(0.0, 100.0, 25.0, 0.0);
        let tele = claim(0.1, 160.0, 25.0, 0.0);
        assert!(claim_faults(Some(a), tele, &limits).contains(&ClaimFault::Teleport));
        let jump = claim(0.1, 102.5, 28.0, 0.0);
        assert!(claim_faults(Some(a), jump, &limits).contains(&ClaimFault::ImpliedAccel));
    }

    #[test]
    fn same_instant_contradiction() {
        let limits = KinematicLimits::default();
        let a = claim(5.0, 100.0, 25.0, 0.0);
        let b = claim(5.0, 100.0, 21.0, 0.0);
        assert_eq!(
            claim_faults(Some(a), b, &limits),
            vec![ClaimFault::Contradiction]
        );
        // Near-identical repeat is fine (duplicate delivery).
        let c = claim(5.0, 100.2, 25.1, 0.0);
        assert!(claim_faults(Some(a), c, &limits).is_empty());
    }

    #[test]
    fn accel_mismatch_catches_plausible_magnitude_lies() {
        let limits = KinematicLimits::default();
        // Claimed braking at -4 while the speed story is flat: the classic
        // insider-FDI lie with every individual value in range.
        let a = claim(0.0, 100.0, 25.0, -4.0);
        let b = claim(0.1, 102.5, 25.0, -4.0);
        assert_eq!(
            claim_faults(Some(a), b, &limits),
            vec![ClaimFault::AccelMismatch]
        );
        // The legacy trust profile disables the cross-check.
        let legacy = KinematicLimits {
            accel_mismatch: None,
            ..Default::default()
        };
        assert!(claim_faults(Some(a), b, &legacy).is_empty());
    }

    #[test]
    fn ranging_and_rssi_primitives() {
        assert!(!ranging_mismatch(10.0, 10.5, 0.0, 0.2, 6.0, 3.0));
        assert!(ranging_mismatch(18.0, 10.0, 0.0, 0.0, 6.0, 3.0));
        assert!(ranging_mismatch(10.0, 10.0, 5.0, 0.0, 6.0, 3.0));
        assert!(!rssi_anomaly(-70.0, -75.0, 18.0));
        assert!(rssi_anomaly(-70.0, -95.0, 18.0));
    }
}
