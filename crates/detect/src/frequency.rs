//! Beacon-frequency and silence monitoring — the DoS/jamming detector.
//!
//! Three behaviours, all per observer:
//!
//! * **Flooding** — a sender beaconing far above the nominal rate, or the
//!   manoeuvre channel carrying an implausible message rate (join floods).
//! * **Selective silence** — one expected member going quiet while the
//!   observer still hears everyone else: the signature of a crashed or
//!   malware-disabled vehicle (and of targeted jamming).
//! * **Channel outage** — the observer hearing *nothing* for a sustained
//!   interval: broadband jamming or a dead radio. Attributed to the
//!   channel, not to any sender.
//!
//! Silence findings are episode-based: one report per quiet spell, re-armed
//! when the party is heard again, so a dead vehicle does not flood the
//! fusion layer every tick.

use crate::detector::{Detector, Evidence};
use crate::fusion::AlertTarget;
use crate::observation::{BeaconObservation, ControlObservation, TickContext};
use std::collections::BTreeMap;

/// Tuning for the frequency/silence detector.
#[derive(Clone, Debug)]
pub struct FrequencyConfig {
    /// Quiet interval after which a member counts as silent, seconds.
    pub silence_timeout: f64,
    /// Grace period at stream start before silence findings, seconds.
    pub warmup: f64,
    /// Beacon-rate multiple of nominal that counts as flooding.
    pub flood_factor: f64,
    /// Nominal per-sender beacon rate, Hz. The engine attach path overrides
    /// this with the scenario's configured rate (`1 / comm_step`).
    pub nominal_rate_hz: f64,
    /// Manoeuvre messages per second (per observer) that count as a flood.
    pub control_rate_limit: u32,
    /// Evidence strength for one selective-silence episode.
    pub selective_strength: f64,
    /// Evidence strength for one channel-outage episode (per observer).
    pub outage_strength: f64,
}

impl Default for FrequencyConfig {
    fn default() -> Self {
        FrequencyConfig {
            silence_timeout: 2.0,
            warmup: 1.0,
            flood_factor: 3.0,
            nominal_rate_hz: 10.0,
            control_rate_limit: 20,
            selective_strength: 0.34,
            outage_strength: 0.5,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct RateWindow {
    start: f64,
    count: u32,
    reported: bool,
}

/// Streaming beacon-frequency and silence detector.
#[derive(Clone, Debug, Default)]
pub struct FrequencyDetector {
    config: FrequencyConfig,
    // Last time each (observer, sender) pair was heard, plus the silence
    // episode flag.
    last_heard: BTreeMap<(usize, u64), (f64, bool)>,
    // Last time each observer heard anyone, plus the outage episode flag.
    last_any: BTreeMap<usize, (f64, bool)>,
    // Per-(observer, sender) one-second beacon-rate windows.
    beacon_rate: BTreeMap<(usize, u64), RateWindow>,
    // Per-observer one-second manoeuvre-rate windows.
    control_rate: BTreeMap<usize, RateWindow>,
}

impl FrequencyDetector {
    /// Creates the detector with the given tuning.
    pub fn new(config: FrequencyConfig) -> Self {
        FrequencyDetector {
            config,
            ..Default::default()
        }
    }

    fn heard(&mut self, observer: usize, sender: u64, time: f64) {
        self.last_heard.insert((observer, sender), (time, false));
        self.last_any.insert(observer, (time, false));
    }

    fn bump(window: &mut RateWindow, time: f64, limit: u32) -> bool {
        if time - window.start >= 1.0 {
            *window = RateWindow {
                start: time,
                count: 1,
                reported: false,
            };
            return false;
        }
        window.count += 1;
        if window.count > limit && !window.reported {
            window.reported = true;
            return true;
        }
        false
    }
}

impl Detector for FrequencyDetector {
    fn name(&self) -> &'static str {
        "frequency"
    }

    fn clone_box(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }

    fn observe_beacon(&mut self, obs: &BeaconObservation, sink: &mut Vec<Evidence>) {
        self.heard(obs.ctx.observer, obs.sender.0, obs.time);
        let limit = (self.config.flood_factor * self.config.nominal_rate_hz).max(1.0) as u32;
        let window = self
            .beacon_rate
            .entry((obs.ctx.observer, obs.sender.0))
            .or_insert(RateWindow {
                start: obs.time,
                count: 0,
                reported: false,
            });
        if Self::bump(window, obs.time, limit) {
            sink.push(Evidence {
                time: obs.time,
                target: AlertTarget::Sender(obs.sender),
                detector: self.name(),
                strength: 0.6,
            });
        }
    }

    fn observe_control(&mut self, obs: &ControlObservation, sink: &mut Vec<Evidence>) {
        self.heard(obs.ctx.observer, obs.sender.0, obs.time);
        let window = self
            .control_rate
            .entry(obs.ctx.observer)
            .or_insert(RateWindow {
                start: obs.time,
                count: 0,
                reported: false,
            });
        if Self::bump(window, obs.time, self.config.control_rate_limit) {
            sink.push(Evidence {
                time: obs.time,
                target: AlertTarget::Channel,
                detector: self.name(),
                strength: 0.7,
            });
        }
    }

    fn tick(&mut self, ctx: &TickContext<'_>, sink: &mut Vec<Evidence>) {
        if ctx.now < self.config.warmup + self.config.silence_timeout {
            return;
        }
        for &observer in ctx.observers {
            let (any_last, any_flagged) = self
                .last_any
                .get(&observer)
                .copied()
                .unwrap_or((0.0, false));
            let outage = ctx.now - any_last > self.config.silence_timeout;
            if outage && !any_flagged {
                self.last_any.insert(observer, (any_last, true));
                sink.push(Evidence {
                    time: ctx.now,
                    target: AlertTarget::Channel,
                    detector: self.name(),
                    strength: self.config.outage_strength,
                });
            }
            if outage {
                // Hearing nobody is a channel problem; per-member silence
                // findings would just smear the blame over every sender.
                continue;
            }
            for (idx, member) in ctx.members.iter().enumerate() {
                if idx == observer {
                    continue; // nobody hears their own transmissions
                }
                let key = (observer, member.0);
                let (last, flagged) = self.last_heard.get(&key).copied().unwrap_or((0.0, false));
                if ctx.now - last > self.config.silence_timeout {
                    if !flagged {
                        self.last_heard.insert(key, (last, true));
                        sink.push(Evidence {
                            time: ctx.now,
                            target: AlertTarget::Sender(*member),
                            detector: self.name(),
                            strength: self.config.selective_strength,
                        });
                    }
                } else if flagged {
                    self.last_heard.insert(key, (last, false));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_crypto::cert::PrincipalId;

    fn tick_ctx<'a>(
        now: f64,
        members: &'a [PrincipalId],
        observers: &'a [usize],
    ) -> TickContext<'a> {
        TickContext {
            now,
            comm_step: 0.1,
            members,
            observers,
        }
    }

    #[test]
    fn steady_beaconing_is_silent() {
        let mut det = FrequencyDetector::default();
        let mut sink = Vec::new();
        let members = [PrincipalId(1), PrincipalId(2)];
        for step in 0..100u64 {
            let t = step as f64 * 0.1;
            det.observe_beacon(
                &BeaconObservation::plausible(t, PrincipalId(1), 1),
                &mut sink,
            );
            det.observe_beacon(
                &BeaconObservation::plausible(t, PrincipalId(2), 0),
                &mut sink,
            );
            det.tick(&tick_ctx(t, &members, &[0, 1]), &mut sink);
        }
        assert!(sink.is_empty());
    }

    #[test]
    fn member_going_quiet_is_reported_once_per_episode() {
        let mut det = FrequencyDetector::default();
        let mut sink = Vec::new();
        let members = [PrincipalId(1), PrincipalId(2), PrincipalId(3)];
        for step in 0..120u64 {
            let t = step as f64 * 0.1;
            // Observers 0 and 1 keep hearing each other; member 3 (vehicle 2)
            // stops beaconing at t=5.
            det.observe_beacon(
                &BeaconObservation::plausible(t, PrincipalId(2), 0),
                &mut sink,
            );
            det.observe_beacon(
                &BeaconObservation::plausible(t, PrincipalId(1), 1),
                &mut sink,
            );
            if t < 5.0 {
                det.observe_beacon(
                    &BeaconObservation::plausible(t, PrincipalId(3), 0),
                    &mut sink,
                );
                det.observe_beacon(
                    &BeaconObservation::plausible(t, PrincipalId(3), 1),
                    &mut sink,
                );
            }
            det.tick(&tick_ctx(t, &members, &[0, 1]), &mut sink);
        }
        // Exactly one selective-silence report per observer, no outage
        // alarms (both observers still hear someone).
        assert!(sink
            .iter()
            .all(|e| e.target == AlertTarget::Sender(PrincipalId(3))));
        assert_eq!(sink.len(), 2);
        assert!(sink.iter().all(|e| e.time > 7.0 - 1e-9));
    }

    #[test]
    fn total_silence_is_a_channel_alarm() {
        let mut det = FrequencyDetector::default();
        let mut sink = Vec::new();
        let members = [PrincipalId(1), PrincipalId(2)];
        for step in 0..60u64 {
            let t = step as f64 * 0.1;
            det.tick(&tick_ctx(t, &members, &[0, 1]), &mut sink);
        }
        // One outage episode per observer, no per-sender blame smearing.
        assert_eq!(sink.len(), 2);
        assert!(sink.iter().all(|e| e.target == AlertTarget::Channel));
    }

    #[test]
    fn beacon_flood_is_reported() {
        let mut det = FrequencyDetector::default();
        let mut sink = Vec::new();
        for i in 0..60u64 {
            let t = 2.0 + i as f64 * 0.01; // 100 Hz burst
            det.observe_beacon(
                &BeaconObservation::plausible(t, PrincipalId(5), 0),
                &mut sink,
            );
        }
        assert_eq!(sink.len(), 1, "one report per rate window");
        assert_eq!(sink[0].target, AlertTarget::Sender(PrincipalId(5)));
    }

    #[test]
    fn benign_20hz_beaconing_is_silent_once_rate_is_configured() {
        // Regression: the flood limit used to hardcode a 10 Hz nominal
        // rate, so 20 Hz benign beaconing (20/s < 3×20 but < 3×10 fails
        // only above 30/s — two streams per observer tipped it) must stay
        // silent when the configured rate matches the scenario.
        let mut det = FrequencyDetector::new(FrequencyConfig {
            nominal_rate_hz: 20.0,
            ..Default::default()
        });
        let mut sink = Vec::new();
        for step in 0..200u64 {
            let t = step as f64 * 0.05; // 20 Hz
            det.observe_beacon(
                &BeaconObservation::plausible(t, PrincipalId(1), 0),
                &mut sink,
            );
            det.observe_beacon(
                &BeaconObservation::plausible(t, PrincipalId(2), 0),
                &mut sink,
            );
        }
        assert!(sink.is_empty(), "benign 20 Hz flagged: {sink:?}");
    }

    #[test]
    fn hardcoded_rate_assumption_would_flag_fast_benign_beaconing() {
        // The pre-fix behaviour, pinned so the bug cannot silently return:
        // with the default 10 Hz nominal a *benign* 40 Hz stream (plausible
        // for dense sensor-grade beaconing) trips the flood limit, while a
        // correctly configured 40 Hz nominal stays silent.
        let benign_40hz = |config: FrequencyConfig| {
            let mut det = FrequencyDetector::new(config);
            let mut sink = Vec::new();
            for step in 0..80u64 {
                let t = step as f64 * 0.025; // 40 Hz
                det.observe_beacon(
                    &BeaconObservation::plausible(t, PrincipalId(1), 0),
                    &mut sink,
                );
            }
            sink.len()
        };
        assert!(
            benign_40hz(FrequencyConfig::default()) > 0,
            "10 Hz assumption must flag a 40 Hz benign stream (the old bug)"
        );
        assert_eq!(
            benign_40hz(FrequencyConfig {
                nominal_rate_hz: 40.0,
                ..Default::default()
            }),
            0,
            "configured 40 Hz nominal must stay silent"
        );
    }

    #[test]
    fn genuine_flood_is_still_caught_at_20hz_nominal() {
        let mut det = FrequencyDetector::new(FrequencyConfig {
            nominal_rate_hz: 20.0,
            ..Default::default()
        });
        let mut sink = Vec::new();
        for i in 0..100u64 {
            let t = 2.0 + i as f64 * 0.005; // 200 Hz burst > 3×20
            det.observe_beacon(
                &BeaconObservation::plausible(t, PrincipalId(5), 0),
                &mut sink,
            );
        }
        assert_eq!(sink.len(), 1, "one report per rate window");
        assert_eq!(sink[0].target, AlertTarget::Sender(PrincipalId(5)));
    }

    #[test]
    fn control_flood_is_a_channel_alarm() {
        let mut det = FrequencyDetector::default();
        let mut sink = Vec::new();
        for i in 0..40u64 {
            let mut obs =
                BeaconObservation::plausible(2.0 + i as f64 * 0.01, PrincipalId(100 + i), 0);
            obs.ctx.observer = 0;
            let control = ControlObservation {
                time: obs.time,
                sender: obs.sender,
                kind: crate::observation::ControlKind::JoinRequest {
                    claimed_position: 0.0,
                },
                timestamp: obs.time,
                rssi_dbm: obs.rssi_dbm,
                channel: obs.channel,
                auth: obs.auth,
                ctx: obs.ctx,
            };
            det.observe_control(&control, &mut sink);
        }
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].target, AlertTarget::Channel);
    }
}
