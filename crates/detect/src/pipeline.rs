//! The assembled detection bank: five detectors feeding weighted fusion,
//! with an alert log.

use crate::detector::{Detector, Evidence};
use crate::frequency::{FrequencyConfig, FrequencyDetector};
use crate::freshness::{FreshnessConfig, FreshnessDetector};
use crate::fusion::{Alert, Fusion, FusionConfig};
use crate::identity::{IdentityConfig, IdentityDetector};
use crate::kinematic::{KinematicConfig, KinematicDetector};
use crate::observation::{
    BeaconObservation, ControlObservation, MessageObservation, SensorObservation, TickContext,
};
use crate::range::{RangeConfig, RangeConsistencyDetector};

/// Configuration of the full detection bank.
#[derive(Clone, Debug, Default)]
pub struct PipelineConfig {
    /// Kinematic-plausibility tuning.
    pub kinematic: KinematicConfig,
    /// Range-consistency tuning.
    pub range: RangeConfig,
    /// Frequency/silence tuning.
    pub frequency: FrequencyConfig,
    /// Identity-consistency tuning.
    pub identity: IdentityConfig,
    /// Replay/freshness tuning.
    pub freshness: FreshnessConfig,
    /// Fusion weights and hysteresis thresholds.
    pub fusion: FusionConfig,
}

impl PipelineConfig {
    /// The default profile: per-detector defaults, fusion raise threshold
    /// 1.0 with a 3 s suspicion half-life. Balanced for low false
    /// positives on honest traffic.
    pub fn default_profile() -> Self {
        PipelineConfig::default()
    }

    /// The strict profile: a lower raise threshold and a longer suspicion
    /// half-life, so weaker/slower-accumulating evidence convicts. Higher
    /// detection rate, higher false-positive risk.
    pub fn strict() -> Self {
        PipelineConfig {
            fusion: FusionConfig {
                raise_threshold: 0.6,
                half_life: 5.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// The streaming detection pipeline: every observation is offered to each
/// detector in a fixed order; the evidence they emit is fused; crossing
/// the raise threshold appends an [`Alert`] to the log.
#[derive(Debug)]
pub struct Pipeline {
    detectors: Vec<Box<dyn Detector>>,
    fusion: Fusion,
    scratch: Vec<Evidence>,
    fresh: Vec<Alert>,
    log: Vec<Alert>,
    evidence_count: u64,
}

impl Pipeline {
    /// Assembles the stock five-detector bank under the given config.
    pub fn new(config: PipelineConfig) -> Self {
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(KinematicDetector::new(config.kinematic)),
            Box::new(RangeConsistencyDetector::new(config.range)),
            Box::new(FrequencyDetector::new(config.frequency)),
            Box::new(IdentityDetector::new(config.identity)),
            Box::new(FreshnessDetector::new(config.freshness)),
        ];
        Pipeline {
            detectors,
            fusion: Fusion::new(config.fusion),
            scratch: Vec::new(),
            fresh: Vec::new(),
            log: Vec::new(),
            evidence_count: 0,
        }
    }

    /// Assembles a pipeline over an arbitrary detector bank — e.g. a
    /// learned detector standing alone so its alert stream can be scored
    /// by the same machinery as the stock bank's.
    pub fn with_detectors(detectors: Vec<Box<dyn Detector>>, fusion: FusionConfig) -> Self {
        Pipeline {
            detectors,
            fusion: Fusion::new(fusion),
            scratch: Vec::new(),
            fresh: Vec::new(),
            log: Vec::new(),
            evidence_count: 0,
        }
    }

    fn drain_scratch(&mut self) {
        self.evidence_count += self.scratch.len() as u64;
        for evidence in self.scratch.drain(..) {
            if let Some(alert) = self.fusion.ingest(&evidence) {
                self.fresh.push(alert.clone());
                self.log.push(alert);
            }
        }
    }

    /// Feeds one received beacon through every detector.
    pub fn observe_beacon(&mut self, obs: &BeaconObservation) {
        for det in &mut self.detectors {
            det.observe_beacon(obs, &mut self.scratch);
        }
        self.drain_scratch();
    }

    /// Feeds one received manoeuvre message through every detector.
    pub fn observe_control(&mut self, obs: &ControlObservation) {
        for det in &mut self.detectors {
            det.observe_control(obs, &mut self.scratch);
        }
        self.drain_scratch();
    }

    /// Feeds a whole delivery round's received messages in arrival order.
    ///
    /// Equivalent to calling [`observe_beacon`](Self::observe_beacon) /
    /// [`observe_control`](Self::observe_control) per element — the
    /// detectors' stateful per-sender tracks see the identical interleaved
    /// stream — but lets the caller accumulate observations into one
    /// reusable buffer per simulation step and hand them over in a single
    /// batched call.
    pub fn ingest_messages(&mut self, batch: &[MessageObservation]) {
        for obs in batch {
            match obs {
                MessageObservation::Beacon(b) => self.observe_beacon(b),
                MessageObservation::Control(c) => self.observe_control(c),
            }
        }
    }

    /// Feeds one on-board sensor cross-check sample.
    pub fn observe_sensors(&mut self, obs: &SensorObservation) {
        for det in &mut self.detectors {
            det.observe_sensors(obs, &mut self.scratch);
        }
        self.drain_scratch();
    }

    /// Announces a driving-regime phase change to every detector, so
    /// regime-aware detectors can swap in per-phase threshold sets.
    pub fn on_regime(&mut self, label: &str) {
        for det in &mut self.detectors {
            det.on_regime(label);
        }
    }

    /// Clones the whole pipeline — detector banks, fusion tracks, alert
    /// log — for engine snapshots. Returns `None` if any detector in the
    /// bank does not support snapshotting (see [`Detector::clone_box`]).
    pub fn try_clone(&self) -> Option<Pipeline> {
        let mut detectors = Vec::with_capacity(self.detectors.len());
        for det in &self.detectors {
            detectors.push(det.clone_box()?);
        }
        Some(Pipeline {
            detectors,
            fusion: self.fusion.clone(),
            scratch: self.scratch.clone(),
            fresh: self.fresh.clone(),
            log: self.log.clone(),
            evidence_count: self.evidence_count,
        })
    }

    /// Advances time once per simulation step: silence monitoring plus
    /// fusion decay.
    pub fn tick(&mut self, ctx: &TickContext<'_>) {
        for det in &mut self.detectors {
            det.tick(ctx, &mut self.scratch);
        }
        self.drain_scratch();
        self.fusion.tick(ctx.now);
    }

    /// Drains and returns the alerts raised since the last call.
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.fresh)
    }

    /// The full alert log since construction, in raise order.
    pub fn alerts(&self) -> &[Alert] {
        &self.log
    }

    /// Total pieces of evidence fused so far (throughput diagnostics).
    pub fn evidence_count(&self) -> u64 {
        self.evidence_count
    }

    /// Read access to the fusion layer (scores, flags).
    pub fn fusion(&self) -> &Fusion {
        &self.fusion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::AlertTarget;
    use platoon_crypto::cert::PrincipalId;

    #[test]
    fn clean_synthetic_stream_raises_nothing() {
        let mut pipeline = Pipeline::new(PipelineConfig::default_profile());
        let members = [PrincipalId(1), PrincipalId(2), PrincipalId(3)];
        for step in 0..300u64 {
            let t = step as f64 * 0.1;
            for (idx, member) in members.iter().enumerate() {
                for obs_idx in 0..members.len() {
                    if obs_idx != idx {
                        pipeline.observe_beacon(&BeaconObservation::plausible(t, *member, obs_idx));
                    }
                }
            }
            pipeline.tick(&TickContext {
                now: t,
                comm_step: 0.1,
                members: &members,
                observers: &[0, 1, 2],
            });
        }
        assert!(pipeline.take_alerts().is_empty());
        assert!(pipeline.alerts().is_empty());
    }

    #[test]
    fn teleporting_sender_is_convicted_and_attributed() {
        let mut pipeline = Pipeline::new(PipelineConfig::default_profile());
        for step in 0..60u64 {
            let t = step as f64 * 0.1;
            let mut obs = BeaconObservation::plausible(t, PrincipalId(7), 0);
            if step >= 20 {
                obs.claim.position += 250.0;
                obs.claim.accel = 15.0; // physically impossible claim
            }
            pipeline.observe_beacon(&obs);
        }
        let alerts = pipeline.take_alerts();
        assert!(!alerts.is_empty());
        assert_eq!(alerts[0].target, AlertTarget::Sender(PrincipalId(7)));
        assert!(alerts[0]
            .contributors
            .iter()
            .any(|(name, _)| *name == "kinematic"));
    }

    #[test]
    fn identical_streams_produce_identical_alert_logs() {
        let run = || {
            let mut pipeline = Pipeline::new(PipelineConfig::strict());
            for step in 0..80u64 {
                let t = step as f64 * 0.1;
                let mut obs = BeaconObservation::plausible(t, PrincipalId(3), 1);
                if step % 7 == 0 {
                    obs.claim.speed += 20.0;
                }
                pipeline.observe_beacon(&obs);
            }
            pipeline.alerts().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
