//! Identity-consistency detector — Sybil / impersonation heuristics over
//! pseudonym and signature metadata.
//!
//! Four behaviours:
//!
//! * **Credential mismatch** — a signed frame whose certificate subject is
//!   not the claimed sender: direct cryptographic evidence of
//!   impersonation. Strength 1.0 (alerts on its own).
//! * **Scheme downgrade** — a sender that previously used a stronger
//!   authentication scheme arriving with a weaker one, the classic way an
//!   impersonator who lacks the victim's key betrays itself.
//! * **New-identity burst** — more first-seen identities inside a sliding
//!   window than honest churn explains: Sybil ghosts and join floods.
//!   When a burst trips, every identity in the window is implicated
//!   (including the ones that opened it), and further traffic from those
//!   identities keeps feeding suspicion.
//! * **Signal-fingerprint drift** — a sender whose receive power suddenly
//!   departs from its own long-run EWMA: a second transmitter using the
//!   same identity from elsewhere. Weak on its own (fading is noisy), so
//!   it only corroborates.

use crate::checks;
use crate::detector::{Detector, Evidence};
use crate::fusion::AlertTarget;
use crate::observation::{AuthMeta, BeaconObservation, ControlObservation};
use platoon_crypto::cert::PrincipalId;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Tuning for the identity-consistency detector.
#[derive(Clone, Debug)]
pub struct IdentityConfig {
    /// Sliding window for counting first-seen identities, seconds.
    pub new_id_window: f64,
    /// First-seen identities per window tolerated before a burst trips.
    pub new_id_limit: usize,
    /// Grace period at stream start (the legitimate roster appearing all
    /// at once must not look like a Sybil burst), seconds.
    pub warmup: f64,
    /// EWMA smoothing factor for the per-sender RSSI fingerprint.
    pub rssi_alpha: f64,
    /// Deviation from the RSSI fingerprint that counts as drift, dB.
    pub rssi_deviation_db: f64,
    /// Fingerprint samples required before drift is judged.
    pub rssi_min_samples: u32,
}

impl Default for IdentityConfig {
    fn default() -> Self {
        IdentityConfig {
            new_id_window: 10.0,
            new_id_limit: 3,
            warmup: 2.0,
            rssi_alpha: 0.1,
            rssi_deviation_db: 15.0,
            rssi_min_samples: 5,
        }
    }
}

/// Streaming identity-consistency detector.
#[derive(Clone, Debug, Default)]
pub struct IdentityDetector {
    config: IdentityConfig,
    // First-sighting times of identities seen after warmup, pruned to the
    // sliding window, in sighting order.
    recent_new: Vec<(f64, u64)>,
    seen: BTreeMap<u64, f64>,
    // Identities implicated by a burst, with the implication time.
    burst_tagged: BTreeMap<u64, f64>,
    // Strongest auth-scheme rank each sender has shown.
    max_rank: BTreeMap<u64, u8>,
    // Per-(observer, sender) RSSI fingerprint: (ewma dBm, samples).
    rssi: BTreeMap<(usize, u64), (f64, u32)>,
}

impl IdentityDetector {
    /// Creates the detector with the given tuning.
    pub fn new(config: IdentityConfig) -> Self {
        IdentityDetector {
            config,
            ..Default::default()
        }
    }

    fn check(
        &mut self,
        time: f64,
        sender: PrincipalId,
        auth: AuthMeta,
        rssi_dbm: f64,
        observer: usize,
        sink: &mut Vec<Evidence>,
    ) {
        let name = "identity";
        if let AuthMeta::Signed { subject } = auth {
            if subject != sender {
                sink.push(Evidence {
                    time,
                    target: AlertTarget::Sender(sender),
                    detector: name,
                    strength: 1.0,
                });
            }
        }
        let rank = auth.rank();
        let best = self.max_rank.entry(sender.0).or_insert(rank);
        if rank < *best {
            sink.push(Evidence {
                time,
                target: AlertTarget::Sender(sender),
                detector: name,
                strength: 0.6,
            });
        } else {
            *best = rank;
        }
        // New-identity burst accounting (global across observers: identity
        // churn is a platoon-level phenomenon).
        if let Entry::Vacant(slot) = self.seen.entry(sender.0) {
            slot.insert(time);
            if time >= self.config.warmup {
                self.recent_new
                    .retain(|(t, _)| time - *t <= self.config.new_id_window);
                self.recent_new.push((time, sender.0));
                if self.recent_new.len() == self.config.new_id_limit + 1 {
                    // Burst opens: implicate every identity in the window.
                    let tagged: Vec<u64> = self.recent_new.iter().map(|(_, id)| *id).collect();
                    for id in tagged {
                        self.burst_tagged.entry(id).or_insert(time);
                        sink.push(Evidence {
                            time,
                            target: AlertTarget::Sender(PrincipalId(id)),
                            detector: name,
                            strength: 0.5,
                        });
                    }
                } else if self.recent_new.len() > self.config.new_id_limit + 1 {
                    self.burst_tagged.entry(sender.0).or_insert(time);
                    sink.push(Evidence {
                        time,
                        target: AlertTarget::Sender(sender),
                        detector: name,
                        strength: 0.5,
                    });
                }
            }
        } else if let Some(&tagged_at) = self.burst_tagged.get(&sender.0) {
            if time - tagged_at <= self.config.new_id_window {
                // Continued traffic from a burst identity keeps corroborating.
                sink.push(Evidence {
                    time,
                    target: AlertTarget::Sender(sender),
                    detector: name,
                    strength: 0.2,
                });
            } else {
                self.burst_tagged.remove(&sender.0);
            }
        }
        // Signal-fingerprint drift.
        let entry = self
            .rssi
            .entry((observer, sender.0))
            .or_insert((rssi_dbm, 0));
        let (ewma, samples) = *entry;
        if samples >= self.config.rssi_min_samples
            && checks::rssi_anomaly(ewma, rssi_dbm, self.config.rssi_deviation_db)
        {
            sink.push(Evidence {
                time,
                target: AlertTarget::Sender(sender),
                detector: name,
                strength: 0.2,
            });
        }
        let alpha = self.config.rssi_alpha;
        *entry = (ewma + alpha * (rssi_dbm - ewma), samples.saturating_add(1));
    }
}

impl Detector for IdentityDetector {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn clone_box(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }

    fn observe_beacon(&mut self, obs: &BeaconObservation, sink: &mut Vec<Evidence>) {
        self.check(
            obs.time,
            obs.sender,
            obs.auth,
            obs.rssi_dbm,
            obs.ctx.observer,
            sink,
        );
    }

    fn observe_control(&mut self, obs: &ControlObservation, sink: &mut Vec<Evidence>) {
        self.check(
            obs.time,
            obs.sender,
            obs.auth,
            obs.rssi_dbm,
            obs.ctx.observer,
            sink,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_at_start_is_not_a_burst() {
        let mut det = IdentityDetector::default();
        let mut sink = Vec::new();
        for step in 0..300u64 {
            let t = step as f64 * 0.1;
            for id in 1..=8u64 {
                det.observe_beacon(
                    &BeaconObservation::plausible(t, PrincipalId(id), 0),
                    &mut sink,
                );
            }
        }
        assert!(sink.is_empty());
    }

    #[test]
    fn certificate_subject_mismatch_is_conclusive() {
        let mut det = IdentityDetector::default();
        let mut sink = Vec::new();
        let mut obs = BeaconObservation::plausible(1.0, PrincipalId(1), 0);
        obs.auth = AuthMeta::Signed {
            subject: PrincipalId(9000),
        };
        det.observe_beacon(&obs, &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].strength, 1.0);
    }

    #[test]
    fn scheme_downgrade_is_flagged() {
        let mut det = IdentityDetector::default();
        let mut sink = Vec::new();
        let mut obs = BeaconObservation::plausible(0.0, PrincipalId(1), 0);
        obs.auth = AuthMeta::Signed {
            subject: PrincipalId(1),
        };
        det.observe_beacon(&obs, &mut sink);
        assert!(sink.is_empty());
        let mut plain = BeaconObservation::plausible(0.1, PrincipalId(1), 0);
        plain.auth = AuthMeta::Plain;
        det.observe_beacon(&plain, &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].strength, 0.6);
    }

    #[test]
    fn ghost_burst_implicates_every_ghost() {
        let mut det = IdentityDetector::default();
        let mut sink = Vec::new();
        // Legitimate roster before warmup.
        for id in 1..=6u64 {
            det.observe_beacon(
                &BeaconObservation::plausible(0.1, PrincipalId(id), 0),
                &mut sink,
            );
        }
        // Five ghosts appear at t=5 within one beacon interval.
        for (i, id) in (7000..7005u64).enumerate() {
            det.observe_beacon(
                &BeaconObservation::plausible(5.0 + i as f64 * 0.01, PrincipalId(id), 0),
                &mut sink,
            );
        }
        let implicated: Vec<u64> = sink
            .iter()
            .filter_map(|e| match e.target {
                AlertTarget::Sender(p) if e.strength == 0.5 => Some(p.0),
                _ => None,
            })
            .collect();
        assert_eq!(implicated, vec![7000, 7001, 7002, 7003, 7004]);
        // Continued ghost traffic keeps corroborating.
        sink.clear();
        det.observe_beacon(
            &BeaconObservation::plausible(5.5, PrincipalId(7000), 0),
            &mut sink,
        );
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].strength, 0.2);
    }

    #[test]
    fn rssi_fingerprint_drift_corroborates() {
        let mut det = IdentityDetector::default();
        let mut sink = Vec::new();
        for step in 0..20u64 {
            det.observe_beacon(
                &BeaconObservation::plausible(step as f64 * 0.1, PrincipalId(1), 0),
                &mut sink,
            );
        }
        assert!(sink.is_empty());
        let mut odd = BeaconObservation::plausible(2.0, PrincipalId(1), 0);
        odd.rssi_dbm = -90.0; // 30 dB below the established fingerprint
        det.observe_beacon(&odd, &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].strength, 0.2);
    }
}
