//! Weighted evidence fusion with hysteresis.
//!
//! Fusion keeps one decaying suspicion score per target. Each piece of
//! [`Evidence`] adds `weight(detector) ×
//! strength`; scores decay exponentially between contributions. When a
//! score crosses the raise threshold an [`Alert`] fires, and the target
//! stays flagged — no re-alerting — until its score decays back below the
//! clear threshold (hysteresis).
//!
//! Tracks live in a vector in first-seen order and alerts are raised at
//! ingest time, so the alert stream is a pure function of the evidence
//! stream — no hash-map iteration anywhere.

use crate::detector::Evidence;
use platoon_crypto::cert::PrincipalId;

/// Who an alert or a piece of evidence implicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlertTarget {
    /// A specific claimed sender identity.
    Sender(PrincipalId),
    /// The channel itself (jamming / flooding with no attributable sender).
    Channel,
}

/// A raised verdict: the fused score crossed the raise threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// When the triggering evidence was observed, seconds.
    pub time: f64,
    /// Who is implicated.
    pub target: AlertTarget,
    /// The fused score at raise time.
    pub score: f64,
    /// Per-detector accumulated (weighted, decayed) contributions at raise
    /// time, in first-contribution order.
    pub contributors: Vec<(&'static str, f64)>,
}

/// Fusion tuning: detector weights plus the hysteresis thresholds.
#[derive(Clone, Debug)]
pub struct FusionConfig {
    /// Per-detector weights; detectors not listed weigh 1.0.
    pub weights: Vec<(&'static str, f64)>,
    /// Score at which an unflagged target raises an alert.
    pub raise_threshold: f64,
    /// Score below which a flagged target re-arms.
    pub clear_threshold: f64,
    /// Exponential-decay half-life of suspicion, seconds.
    pub half_life: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            weights: Vec::new(),
            raise_threshold: 1.0,
            clear_threshold: 0.3,
            half_life: 3.0,
        }
    }
}

impl FusionConfig {
    fn weight(&self, detector: &str) -> f64 {
        self.weights
            .iter()
            .find(|(name, _)| *name == detector)
            .map(|(_, w)| *w)
            .unwrap_or(1.0)
    }
}

#[derive(Clone, Debug)]
struct Track {
    target: AlertTarget,
    score: f64,
    last_update: f64,
    flagged: bool,
    contributors: Vec<(&'static str, f64)>,
}

/// The fusion engine: per-target decaying scores with hysteresis.
#[derive(Clone, Debug)]
pub struct Fusion {
    config: FusionConfig,
    tracks: Vec<Track>,
}

impl Fusion {
    /// Creates a fusion engine with the given tuning.
    pub fn new(config: FusionConfig) -> Self {
        Fusion {
            config,
            tracks: Vec::new(),
        }
    }

    fn decay(config: &FusionConfig, track: &mut Track, now: f64) {
        let dt = now - track.last_update;
        if dt > 0.0 && config.half_life > 0.0 {
            let factor = 0.5f64.powf(dt / config.half_life);
            track.score *= factor;
            for (_, c) in &mut track.contributors {
                *c *= factor;
            }
        }
        track.last_update = track.last_update.max(now);
        if track.flagged && track.score < config.clear_threshold {
            track.flagged = false;
        }
    }

    /// Feeds one piece of evidence; returns an alert if the target's score
    /// just crossed the raise threshold.
    pub fn ingest(&mut self, evidence: &Evidence) -> Option<Alert> {
        let config = &self.config;
        let idx = match self.tracks.iter().position(|t| t.target == evidence.target) {
            Some(idx) => idx,
            None => {
                self.tracks.push(Track {
                    target: evidence.target,
                    score: 0.0,
                    last_update: evidence.time,
                    flagged: false,
                    contributors: Vec::new(),
                });
                self.tracks.len() - 1
            }
        };
        let track = &mut self.tracks[idx];
        Self::decay(config, track, evidence.time);
        let add = config.weight(evidence.detector) * evidence.strength;
        track.score += add;
        match track
            .contributors
            .iter_mut()
            .find(|(name, _)| *name == evidence.detector)
        {
            Some((_, c)) => *c += add,
            None => track.contributors.push((evidence.detector, add)),
        }
        if !track.flagged && track.score >= config.raise_threshold {
            track.flagged = true;
            return Some(Alert {
                time: evidence.time,
                target: track.target,
                score: track.score,
                contributors: track.contributors.clone(),
            });
        }
        None
    }

    /// Advances time: decays all tracks and re-arms any that cleared.
    pub fn tick(&mut self, now: f64) {
        for track in &mut self.tracks {
            Self::decay(&self.config, track, now);
        }
    }

    /// Current fused score for a target (0.0 if never seen).
    pub fn score(&self, target: AlertTarget) -> f64 {
        self.tracks
            .iter()
            .find(|t| t.target == target)
            .map(|t| t.score)
            .unwrap_or(0.0)
    }

    /// Whether a target is currently flagged (alerted, not yet cleared).
    pub fn is_flagged(&self, target: AlertTarget) -> bool {
        self.tracks.iter().any(|t| t.target == target && t.flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, id: u64, strength: f64) -> Evidence {
        Evidence {
            time,
            target: AlertTarget::Sender(PrincipalId(id)),
            detector: "kinematic",
            strength,
        }
    }

    #[test]
    fn raises_once_then_holds_until_cleared() {
        let mut fusion = Fusion::new(FusionConfig::default());
        assert!(fusion.ingest(&ev(0.0, 9, 0.6)).is_none());
        let alert = fusion.ingest(&ev(0.1, 9, 0.6)).expect("crosses threshold");
        assert_eq!(alert.target, AlertTarget::Sender(PrincipalId(9)));
        assert!(alert.score >= 1.0);
        // Still hot: more evidence does not re-alert.
        assert!(fusion.ingest(&ev(0.2, 9, 0.9)).is_none());
        assert!(fusion.is_flagged(AlertTarget::Sender(PrincipalId(9))));
        // After a long quiet spell the track clears and can re-raise.
        fusion.tick(60.0);
        assert!(!fusion.is_flagged(AlertTarget::Sender(PrincipalId(9))));
        assert!(fusion.ingest(&ev(60.1, 9, 1.0)).is_some());
    }

    #[test]
    fn scores_decay_between_contributions() {
        let mut fusion = Fusion::new(FusionConfig::default());
        fusion.ingest(&ev(0.0, 4, 0.9));
        // One half-life later the 0.9 has decayed to 0.45; adding 0.5 stays
        // under the raise threshold.
        assert!(fusion.ingest(&ev(3.0, 4, 0.5)).is_none());
        assert!(fusion.score(AlertTarget::Sender(PrincipalId(4))) < 1.0);
    }

    #[test]
    fn weights_scale_contributions() {
        let config = FusionConfig {
            weights: vec![("kinematic", 2.0)],
            ..Default::default()
        };
        let mut fusion = Fusion::new(config);
        let alert = fusion.ingest(&ev(0.0, 2, 0.5)).expect("weighted to 1.0");
        assert_eq!(alert.contributors, vec![("kinematic", 1.0)]);
    }

    #[test]
    fn channel_and_sender_tracks_are_independent() {
        let mut fusion = Fusion::new(FusionConfig::default());
        fusion.ingest(&Evidence {
            time: 0.0,
            target: AlertTarget::Channel,
            detector: "frequency",
            strength: 0.9,
        });
        assert_eq!(fusion.score(AlertTarget::Sender(PrincipalId(1))), 0.0);
        assert!(fusion.score(AlertTarget::Channel) > 0.0);
    }
}
