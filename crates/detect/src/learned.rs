//! A small learned detector: logistic regression over the shared
//! per-beacon [`features`](crate::features), trained from scratch with
//! deterministic fixed-epoch SGD — no external ML dependency.
//!
//! The model is the *baseline* half of the learned-vs-engineered
//! comparison: the dataset factory trains it on labeled exported rows and
//! wraps it in [`LearnedDetector`], which implements the same
//! [`Detector`] trait as the rule-based bank so the Table IV machinery
//! can score both head-to-head.
//!
//! Everything here is bit-reproducible: feature standardization uses the
//! training split's moments, the per-epoch row order comes from a seeded
//! SplitMix64 Fisher–Yates shuffle, and no wall clock or global RNG is
//! consulted anywhere.

use crate::detector::{Detector, Evidence};
use crate::features::{FeatureExtractor, NUM_FEATURES};
use crate::fusion::AlertTarget;
use crate::observation::BeaconObservation;

/// A trained logistic-regression model over the shared feature vector,
/// with the training split's standardization folded in.
#[derive(Clone, Debug, PartialEq)]
pub struct LogisticModel {
    /// Per-feature weights (standardized space).
    pub weights: [f64; NUM_FEATURES],
    /// Bias term.
    pub bias: f64,
    /// Per-feature training means (for standardization at inference).
    pub mean: [f64; NUM_FEATURES],
    /// Per-feature training standard deviations (floored at 1e-9).
    pub scale: [f64; NUM_FEATURES],
}

impl LogisticModel {
    /// Malice probability for one raw (unstandardized) feature vector.
    pub fn score(&self, x: &[f64; NUM_FEATURES]) -> f64 {
        let mut z = self.bias;
        for (i, &xi) in x.iter().enumerate() {
            z += self.weights[i] * (xi - self.mean[i]) / self.scale[i];
        }
        sigmoid(z)
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z.clamp(-30.0, 30.0)).exp())
}

/// SGD hyperparameters. All defaults are deliberately modest: the point
/// is an honest baseline, not a tuned contender.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Full passes over the training split.
    pub epochs: u32,
    /// Initial learning rate; decays as `lr / (1 + epoch)`.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed (per-epoch orders derive from it).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 0x5eed_da7a,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Trains a logistic-regression model with deterministic fixed-epoch SGD.
///
/// `labels[i]` is the truth label of `rows[i]` (0 benign, 1 malicious).
/// Identical inputs produce a bit-identical model on every worker count
/// and every run.
pub fn train(rows: &[[f64; NUM_FEATURES]], labels: &[u8], config: TrainConfig) -> LogisticModel {
    assert_eq!(rows.len(), labels.len(), "row/label length mismatch");
    let n = rows.len().max(1) as f64;
    let mut mean = [0.0; NUM_FEATURES];
    for x in rows {
        for i in 0..NUM_FEATURES {
            mean[i] += x[i];
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut scale = [0.0; NUM_FEATURES];
    for x in rows {
        for i in 0..NUM_FEATURES {
            let d = x[i] - mean[i];
            scale[i] += d * d;
        }
    }
    for s in &mut scale {
        *s = (*s / n).sqrt().max(1e-9);
    }

    let mut model = LogisticModel {
        weights: [0.0; NUM_FEATURES],
        bias: 0.0,
        mean,
        scale,
    };
    let mut order: Vec<u32> = (0..rows.len() as u32).collect();
    for epoch in 0..config.epochs {
        // Seeded Fisher–Yates: the order is a pure function of
        // (seed, epoch), never of memory layout or thread timing.
        let mut rng_state = config.seed ^ ((epoch as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f));
        for i in (1..order.len()).rev() {
            let j = (splitmix64(&mut rng_state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let lr = config.learning_rate / (1.0 + epoch as f64);
        for &ri in &order {
            let x = &rows[ri as usize];
            let y = labels[ri as usize] as f64;
            let err = model.score(x) - y;
            for (i, &raw) in x.iter().enumerate() {
                let xi = (raw - model.mean[i]) / model.scale[i];
                model.weights[i] -= lr * (err * xi + config.l2 * model.weights[i]);
            }
            model.bias -= lr * err;
        }
    }
    model
}

/// Tuning for the online wrapper around a trained model.
#[derive(Clone, Copy, Debug)]
pub struct LearnedConfig {
    /// Malice probability above which one beacon yields evidence.
    pub threshold: f64,
    /// Evidence strength per flagged beacon.
    pub strength: f64,
}

impl Default for LearnedConfig {
    fn default() -> Self {
        LearnedConfig {
            threshold: 0.9,
            strength: 0.6,
        }
    }
}

/// The trained model wrapped as a streaming [`Detector`]: extracts the
/// shared feature vector per received beacon and emits sender-attributed
/// evidence whenever the model's malice probability crosses the
/// threshold. Slots into
/// [`Pipeline::with_detectors`](crate::pipeline::Pipeline::with_detectors)
/// exactly like a stock detector, so fusion, hysteresis and alert scoring
/// are identical for both halves of the comparison.
#[derive(Clone, Debug)]
pub struct LearnedDetector {
    model: LogisticModel,
    config: LearnedConfig,
    extractor: FeatureExtractor,
}

impl LearnedDetector {
    /// Wraps a trained model with the given tuning.
    pub fn new(model: LogisticModel, config: LearnedConfig) -> Self {
        LearnedDetector {
            model,
            config,
            extractor: FeatureExtractor::new(),
        }
    }
}

impl Detector for LearnedDetector {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn clone_box(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }

    fn observe_beacon(&mut self, obs: &BeaconObservation, sink: &mut Vec<Evidence>) {
        let x = self.extractor.extract(obs);
        let p = self.model.score(&x);
        if p >= self.config.threshold {
            sink.push(Evidence {
                time: obs.time,
                target: AlertTarget::Sender(obs.sender),
                detector: self.name(),
                strength: self.config.strength,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_crypto::cert::PrincipalId;

    /// A toy separable problem: benign rows near the plausible stream,
    /// malicious rows with a huge dead-reckoning jump.
    fn toy_rows() -> (Vec<[f64; NUM_FEATURES]>, Vec<u8>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut ex = FeatureExtractor::new();
        for step in 0..400u64 {
            let t = step as f64 * 0.1;
            let malicious = step % 4 == 3;
            let mut obs = BeaconObservation::plausible(t, PrincipalId(1 + (step % 4)), 0);
            if malicious {
                obs.claim.position += 300.0;
                obs.claim.timestamp -= 2.0;
            }
            rows.push(ex.extract(&obs));
            labels.push(u8::from(malicious));
        }
        (rows, labels)
    }

    #[test]
    fn sgd_separates_a_toy_problem() {
        let (rows, labels) = toy_rows();
        let model = train(&rows, &labels, TrainConfig::default());
        let mut correct = 0;
        for (x, &y) in rows.iter().zip(&labels) {
            let p = model.score(x);
            if (p >= 0.5) == (y == 1) {
                correct += 1;
            }
        }
        let acc = correct as f64 / rows.len() as f64;
        assert!(acc > 0.9, "toy accuracy {acc}");
    }

    #[test]
    fn training_is_bit_deterministic() {
        let (rows, labels) = toy_rows();
        let a = train(&rows, &labels, TrainConfig::default());
        let b = train(&rows, &labels, TrainConfig::default());
        assert_eq!(a, b);
        let c = train(
            &rows,
            &labels,
            TrainConfig {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(a.weights, c.weights, "seed must steer the shuffle");
    }

    #[test]
    fn detector_flags_the_planted_stream() {
        let (rows, labels) = toy_rows();
        let model = train(&rows, &labels, TrainConfig::default());
        let mut det = LearnedDetector::new(model, LearnedConfig::default());
        let mut sink = Vec::new();
        for step in 0..100u64 {
            let t = step as f64 * 0.1;
            let mut obs = BeaconObservation::plausible(t, PrincipalId(9), 0);
            if step >= 50 {
                obs.claim.position += 300.0;
                obs.claim.timestamp -= 2.0;
            }
            det.observe_beacon(&obs, &mut sink);
        }
        assert!(!sink.is_empty(), "planted anomaly must yield evidence");
        assert!(sink.iter().all(|e| e.time >= 5.0), "benign prefix silent");
    }
}
