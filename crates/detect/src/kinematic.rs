//! Kinematic-plausibility detector: scores each beacon's claimed
//! position/speed/acceleration against physical limits and against the
//! sender's own previous claims, via [`checks::claim_faults`].

use crate::checks::{self, ClaimFault, ClaimSnapshot, KinematicLimits};
use crate::detector::{Detector, Evidence};
use crate::fusion::AlertTarget;
use crate::observation::BeaconObservation;
use std::collections::BTreeMap;

/// Tuning for the kinematic detector.
#[derive(Clone, Debug, Default)]
pub struct KinematicConfig {
    /// The plausibility limits to enforce when no regime phase matches.
    pub limits: KinematicLimits,
    /// Per-regime-phase threshold sets: when the engine announces a regime
    /// phase whose label appears here, the paired limits replace `limits`
    /// until the next phase change. Unlisted labels fall back to `limits`.
    pub phase_limits: Vec<(String, KinematicLimits)>,
}

/// Streaming kinematic-plausibility detector.
///
/// Claim history is tracked per `(observer, sender)` pair, so each
/// vehicle's view is judged independently — exactly what an on-board IDS
/// would have.
#[derive(Clone, Debug, Default)]
pub struct KinematicDetector {
    config: KinematicConfig,
    /// Limits selected by the active regime phase; `None` means the base
    /// `config.limits` apply.
    active: Option<KinematicLimits>,
    history: BTreeMap<(usize, u64), ClaimSnapshot>,
}

impl KinematicDetector {
    /// Creates the detector with the given tuning.
    pub fn new(config: KinematicConfig) -> Self {
        KinematicDetector {
            config,
            active: None,
            history: BTreeMap::new(),
        }
    }

    /// The limits currently in force (regime-selected or base).
    pub fn active_limits(&self) -> &KinematicLimits {
        self.active.as_ref().unwrap_or(&self.config.limits)
    }

    fn strength(fault: ClaimFault) -> f64 {
        match fault {
            ClaimFault::Contradiction => 0.9,
            ClaimFault::ImpossibleAccel | ClaimFault::ImpossibleSpeed => 0.8,
            ClaimFault::ImpliedAccel => 0.7,
            ClaimFault::Teleport => 0.6,
            // Needs repetition before fusion convicts: a single mismatch can
            // be an honest transient during a control correction.
            ClaimFault::AccelMismatch => 0.4,
        }
    }
}

impl Detector for KinematicDetector {
    fn name(&self) -> &'static str {
        "kinematic"
    }

    fn observe_beacon(&mut self, obs: &BeaconObservation, sink: &mut Vec<Evidence>) {
        let key = (obs.ctx.observer, obs.sender.0);
        let snap = ClaimSnapshot {
            time: obs.time,
            position: obs.claim.position,
            speed: obs.claim.speed,
            accel: obs.claim.accel,
        };
        let prev = self.history.get(&key).copied();
        let limits = *self.active_limits();
        for fault in checks::claim_faults(prev, snap, &limits) {
            sink.push(Evidence {
                time: obs.time,
                target: AlertTarget::Sender(obs.sender),
                detector: self.name(),
                strength: Self::strength(fault),
            });
        }
        self.history.insert(key, snap);
    }

    fn on_regime(&mut self, label: &str) {
        self.active = self
            .config
            .phase_limits
            .iter()
            .find(|(name, _)| name == label)
            .map(|(_, limits)| *limits);
    }

    fn clone_box(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_crypto::cert::PrincipalId;

    #[test]
    fn clean_stream_emits_nothing() {
        let mut det = KinematicDetector::default();
        let mut sink = Vec::new();
        for step in 0..100 {
            let obs = BeaconObservation::plausible(step as f64 * 0.1, PrincipalId(2), 0);
            det.observe_beacon(&obs, &mut sink);
        }
        assert!(sink.is_empty());
    }

    #[test]
    fn teleport_mid_stream_emits_evidence() {
        let mut det = KinematicDetector::default();
        let mut sink = Vec::new();
        for step in 0..20 {
            let mut obs = BeaconObservation::plausible(step as f64 * 0.1, PrincipalId(2), 0);
            if step >= 10 {
                obs.claim.position += 300.0;
            }
            det.observe_beacon(&obs, &mut sink);
        }
        // The teleport fires once on the jump; afterwards the shifted stream
        // is self-consistent again.
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].target, AlertTarget::Sender(PrincipalId(2)));
        assert_eq!(sink[0].strength, 0.6);
    }

    #[test]
    fn per_observer_histories_are_independent() {
        let mut det = KinematicDetector::default();
        let mut sink = Vec::new();
        // Observer 0 sees the sender at t=0; observer 1 first sees it at
        // t=5 with a wildly different position — no fault, it has no prior.
        det.observe_beacon(
            &BeaconObservation::plausible(0.0, PrincipalId(2), 0),
            &mut sink,
        );
        let mut far = BeaconObservation::plausible(5.0, PrincipalId(2), 1);
        far.claim.position = 9999.0;
        det.observe_beacon(&far, &mut sink);
        assert!(sink.is_empty());
    }

    #[test]
    fn insider_accel_lie_emits_weak_repeated_evidence() {
        let mut det = KinematicDetector::default();
        let mut sink = Vec::new();
        for step in 0..10 {
            let mut obs = BeaconObservation::plausible(step as f64 * 0.1, PrincipalId(3), 0);
            obs.claim.accel = -4.0; // claims hard braking, kinematics say cruise
            det.observe_beacon(&obs, &mut sink);
        }
        assert!(sink.len() >= 8);
        assert!(sink.iter().all(|e| e.strength == 0.4));
    }
}
