//! Integration: the full wire path, from outside the crate.
//!
//! Every message variant must round-trip through every envelope scheme, and
//! every malformed frame — truncated at any length, or with any single byte
//! flipped — must either fail to decode or fail authentication. Signatures
//! are computed over the exact wire bytes, so a codec asymmetry anywhere in
//! this matrix would silently weaken message authentication.

use platoon_crypto::cert::{Certificate, CertificateAuthority, PrincipalId};
use platoon_crypto::keys::{KeyPair, SymmetricKey};
use platoon_crypto::signature::Signer;
use platoon_proto::prelude::*;

fn every_message() -> Vec<PlatoonMessage> {
    vec![
        PlatoonMessage::Beacon(Beacon {
            sender: PrincipalId(11),
            platoon: PlatoonId(3),
            role: Role::Leader,
            seq: 1_000_000,
            timestamp: 99.75,
            position: 1234.5,
            speed: 31.25,
            accel: -1.5,
            length: 16.5,
        }),
        PlatoonMessage::JoinRequest {
            requester: PrincipalId(12),
            platoon: PlatoonId(3),
            position: 1100.0,
            timestamp: 10.0,
        },
        PlatoonMessage::JoinAccept {
            requester: PrincipalId(12),
            platoon: PlatoonId(3),
            slot: 5,
            timestamp: 10.2,
        },
        PlatoonMessage::JoinDeny {
            requester: PrincipalId(12),
            platoon: PlatoonId(3),
            reason: JoinReject::Busy,
            timestamp: 10.2,
        },
        PlatoonMessage::LeaveRequest {
            member: PrincipalId(13),
            platoon: PlatoonId(3),
            timestamp: 40.0,
        },
        PlatoonMessage::LeaveAck {
            member: PrincipalId(13),
            platoon: PlatoonId(3),
            timestamp: 40.1,
        },
        PlatoonMessage::SplitCommand {
            platoon: PlatoonId(3),
            at_index: 2,
            new_platoon: PlatoonId(4),
            timestamp: 55.0,
        },
        PlatoonMessage::GapOpen {
            platoon: PlatoonId(3),
            slot: 1,
            extra_gap: 18.0,
            timestamp: 56.0,
        },
    ]
}

fn authority() -> (CertificateAuthority, Signer, Certificate) {
    let mut ca = CertificateAuthority::new(PrincipalId(900), KeyPair::from_seed(900));
    let kp = KeyPair::from_seed(11);
    let cert = ca.issue(PrincipalId(11), kp.public(), 0.0, 500.0);
    (ca, Signer::new(kp), cert)
}

#[test]
fn every_variant_roundtrips_bare() {
    for msg in every_message() {
        let bytes = msg.encode();
        assert_eq!(PlatoonMessage::decode(&bytes).unwrap(), msg);
        // Canonical: re-encoding the decoded message gives the same bytes.
        assert_eq!(PlatoonMessage::decode(&bytes).unwrap().encode(), bytes);
    }
}

#[test]
fn every_variant_roundtrips_in_every_envelope_scheme() {
    let (ca, signer, cert) = authority();
    let key = SymmetricKey::derive(b"integration", "grp");
    for (nonce, msg) in every_message().into_iter().enumerate() {
        let envs = vec![
            Envelope::plain(PrincipalId(11), &msg),
            Envelope::mac(PrincipalId(11), &msg, &key),
            Envelope::seal_encrypted(PrincipalId(11), &msg, &key, nonce as u64),
            Envelope::sign(PrincipalId(11), &msg, &signer, cert),
        ];
        for env in envs {
            let back = Envelope::decode(&env.encode()).unwrap();
            assert_eq!(back, env);
            let opened = match &back.auth {
                AuthScheme::Plain => back.open_unverified().unwrap(),
                AuthScheme::GroupMac { .. } => back.verify_mac(&key).unwrap(),
                AuthScheme::EncryptedGroupMac { .. } => back.open_encrypted(&key).unwrap(),
                AuthScheme::Signed { .. } => {
                    back.verify_signed(&ca.public(), ca.id(), 50.0).unwrap()
                }
            };
            assert_eq!(opened, msg);
        }
    }
}

#[test]
fn truncated_frames_rejected_at_every_cut() {
    let (_, signer, cert) = authority();
    let key = SymmetricKey::derive(b"integration", "grp");
    let msg = &every_message()[0];
    for env in [
        Envelope::plain(PrincipalId(11), msg),
        Envelope::mac(PrincipalId(11), msg, &key),
        Envelope::seal_encrypted(PrincipalId(11), msg, &key, 1),
        Envelope::sign(PrincipalId(11), msg, &signer, cert),
    ] {
        let bytes = env.encode();
        for cut in 0..bytes.len() {
            assert!(
                Envelope::decode(&bytes[..cut]).is_err(),
                "truncated frame of {} bytes decoded at cut {cut}",
                bytes.len()
            );
        }
    }
}

/// Flip each byte of an authenticated frame in turn: the corrupted frame
/// must fail decode or fail verification — never verify to a different
/// message. (A corrupted *plain* frame may legitimately decode; plain is the
/// undefended baseline and carries no integrity claim.)
#[test]
fn corrupted_authenticated_frames_never_verify() {
    let (ca, signer, cert) = authority();
    let key = SymmetricKey::derive(b"integration", "grp");
    let msg = &every_message()[0];

    let mac_frame = Envelope::mac(PrincipalId(11), msg, &key).encode();
    for i in 0..mac_frame.len() {
        let mut bytes = mac_frame.clone();
        bytes[i] ^= 0x40;
        if let Ok(env) = Envelope::decode(&bytes) {
            assert!(env.verify_mac(&key).is_err(), "MAC frame byte {i}");
        }
    }

    let enc_frame = Envelope::seal_encrypted(PrincipalId(11), msg, &key, 7).encode();
    for i in 0..enc_frame.len() {
        let mut bytes = enc_frame.clone();
        bytes[i] ^= 0x40;
        if let Ok(env) = Envelope::decode(&bytes) {
            assert!(
                env.open_encrypted(&key).is_err(),
                "encrypted frame byte {i}"
            );
        }
    }

    let signed_frame = Envelope::sign(PrincipalId(11), msg, &signer, cert).encode();
    for i in 0..signed_frame.len() {
        let mut bytes = signed_frame.clone();
        bytes[i] ^= 0x40;
        if let Ok(env) = Envelope::decode(&bytes) {
            assert!(
                env.verify_signed(&ca.public(), ca.id(), 50.0).is_err(),
                "signed frame byte {i}"
            );
        }
    }
}

#[test]
fn unknown_message_and_scheme_tags_rejected() {
    for tag in 9u8..=255 {
        let err = PlatoonMessage::decode(&[tag]).unwrap_err();
        assert!(
            matches!(err, DecodeError::BadTag { .. }),
            "message tag {tag}"
        );
    }
    // Envelope: sender (8 bytes) then an unknown scheme tag.
    let mut frame = vec![0u8; 8];
    frame.push(200);
    assert!(matches!(
        Envelope::decode(&frame),
        Err(DecodeError::BadTag { tag: 200, .. })
    ));
}
