//! Hand-rolled binary wire codec.
//!
//! Platoon messages travel as compact binary frames, the way real CAM/DENM
//! messages do (ASN.1 UPER in ETSI ITS). A hand-written codec — rather than
//! a serde format — keeps the wire image deterministic and byte-stable,
//! which matters because **signatures are computed over these exact bytes**:
//! any encode/decode asymmetry would break or weaken message authentication.

use std::fmt;

/// Error returned when decoding malformed bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the field could be read.
    UnexpectedEnd {
        /// Bytes needed.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A tag byte did not correspond to any known variant.
    BadTag {
        /// The offending tag value.
        tag: u8,
        /// What was being decoded.
        context: &'static str,
    },
    /// A length prefix exceeded the sanity limit.
    LengthOverflow {
        /// The claimed length.
        claimed: usize,
    },
    /// Trailing bytes remained after a complete decode.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remaining"
                )
            }
            DecodeError::BadTag { tag, context } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            DecodeError::LengthOverflow { claimed } => {
                write!(f, "length prefix {claimed} exceeds sanity limit")
            }
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after complete message")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum length any single variable-length field may claim.
const MAX_FIELD_LEN: usize = 64 * 1024;

/// Append-only encoder.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a big-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes an IEEE-754 f64 (big-endian bit image).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Writes a u16 length prefix followed by the bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the 64 KiB field limit.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        assert!(bytes.len() <= MAX_FIELD_LEN, "field too long");
        self.u16(bytes.len() as u16);
        self.buf.extend_from_slice(bytes);
        self
    }
}

/// Consuming decoder over a byte slice.
#[derive(Clone, Debug)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(input: &'a [u8]) -> Self {
        Decoder { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Fails unless the input was fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an f64.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a bool byte (any non-zero is `true`).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a u16-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u16()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(DecodeError::LengthOverflow { claimed: len });
        }
        Ok(self.take(len)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .f64(-2.5)
            .bool(true);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.f64().unwrap(), -2.5);
        assert!(d.bool().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn bytes_roundtrip() {
        let mut e = Encoder::new();
        e.bytes(b"hello").bytes(b"");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert_eq!(d.bytes().unwrap(), b"");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Encoder::new();
        e.u64(42);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..5]);
        assert!(matches!(
            d.u64(),
            Err(DecodeError::UnexpectedEnd {
                needed: 8,
                remaining: 5
            })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.u8(1).u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        d.u8().unwrap();
        assert_eq!(d.finish(), Err(DecodeError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn truncated_byte_string_errors() {
        let mut e = Encoder::new();
        e.bytes(b"abcdef");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..4]);
        assert!(d.bytes().is_err());
    }

    #[test]
    fn f64_special_values_roundtrip() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1e-300] {
            let mut e = Encoder::new();
            e.f64(v);
            let bytes = e.into_bytes();
            let got = Decoder::new(&bytes).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
        // NaN roundtrips bit-exactly too.
        let mut e = Encoder::new();
        e.f64(f64::NAN);
        let bytes = e.into_bytes();
        assert!(Decoder::new(&bytes).f64().unwrap().is_nan());
    }

    #[test]
    fn encoding_is_deterministic() {
        let encode = || {
            let mut e = Encoder::new();
            e.u64(99).f64(1.25).bytes(b"x");
            e.into_bytes()
        };
        assert_eq!(encode(), encode());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = DecodeError::BadTag {
            tag: 9,
            context: "message",
        };
        assert!(e.to_string().contains("tag 9"));
        let e = DecodeError::LengthOverflow { claimed: 1 << 20 };
        assert!(e.to_string().contains("sanity"));
    }
}
