//! Application-layer platoon messages: beacons (CAM-style) and manoeuvre
//! messages, with their canonical binary encodings.
//!
//! The message set covers everything the paper's attack catalogue targets:
//! periodic beacons carry the kinematic state that CACC consumes (replay/FDI
//! surface, §V-A), and the join/leave/split manoeuvre messages are the
//! surface of the fake-manoeuvre attack (§V-A.3) and the join-flood DoS
//! (§V-D).

use crate::codec::{DecodeError, Decoder, Encoder};
use platoon_crypto::cert::PrincipalId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a platoon.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlatoonId(pub u32);

impl fmt::Debug for PlatoonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Platoon({})", self.0)
    }
}

impl fmt::Display for PlatoonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Role a vehicle claims in its beacon.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Platoon leader (human-driven, per §II-B).
    Leader,
    /// Automated platoon member.
    Member,
    /// Vehicle in the process of joining or leaving.
    JoinLeave,
    /// Free vehicle not in any platoon.
    Free,
}

impl Role {
    fn to_u8(self) -> u8 {
        match self {
            Role::Leader => 0,
            Role::Member => 1,
            Role::JoinLeave => 2,
            Role::Free => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        Ok(match v {
            0 => Role::Leader,
            1 => Role::Member,
            2 => Role::JoinLeave,
            3 => Role::Free,
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    context: "Role",
                })
            }
        })
    }
}

/// A periodic cooperative-awareness beacon (CAM/BSM equivalent).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Beacon {
    /// Claimed sender identity (pseudonymous or long-term).
    pub sender: PrincipalId,
    /// Platoon the sender claims membership of (0 = none).
    pub platoon: PlatoonId,
    /// Sender's claimed role.
    pub role: Role,
    /// Monotonic per-sender sequence number.
    pub seq: u64,
    /// Timestamp in simulation seconds.
    pub timestamp: f64,
    /// Claimed front-bumper position in metres.
    pub position: f64,
    /// Claimed speed in m/s.
    pub speed: f64,
    /// Claimed acceleration in m/s².
    pub accel: f64,
    /// Vehicle length in metres.
    pub length: f64,
}

/// The reason a leader gives when rejecting a join.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinReject {
    /// Platoon is at its maximum size.
    Full,
    /// Credential check failed.
    BadCredentials,
    /// The leader is too busy processing other requests (DoS backpressure).
    Busy,
    /// Admission check (e.g. physical-context verification) failed.
    AdmissionFailed,
}

impl JoinReject {
    fn to_u8(self) -> u8 {
        match self {
            JoinReject::Full => 0,
            JoinReject::BadCredentials => 1,
            JoinReject::Busy => 2,
            JoinReject::AdmissionFailed => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        Ok(match v {
            0 => JoinReject::Full,
            1 => JoinReject::BadCredentials,
            2 => JoinReject::Busy,
            3 => JoinReject::AdmissionFailed,
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    context: "JoinReject",
                })
            }
        })
    }
}

/// All platoon protocol messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlatoonMessage {
    /// Periodic kinematic beacon.
    Beacon(Beacon),
    /// A vehicle asks the leader to join.
    JoinRequest {
        /// Requesting vehicle.
        requester: PrincipalId,
        /// Target platoon.
        platoon: PlatoonId,
        /// Requester's claimed position (for gap planning).
        position: f64,
        /// Request timestamp.
        timestamp: f64,
    },
    /// Leader accepts a join, assigning a slot.
    JoinAccept {
        /// The accepted vehicle.
        requester: PrincipalId,
        /// Target platoon.
        platoon: PlatoonId,
        /// Index the joiner will occupy (1 = directly behind the leader).
        slot: u32,
        /// Response timestamp.
        timestamp: f64,
    },
    /// Leader rejects a join.
    JoinDeny {
        /// The rejected vehicle.
        requester: PrincipalId,
        /// Target platoon.
        platoon: PlatoonId,
        /// Why.
        reason: JoinReject,
        /// Response timestamp.
        timestamp: f64,
    },
    /// A member announces it is leaving.
    LeaveRequest {
        /// Leaving vehicle.
        member: PrincipalId,
        /// Its platoon.
        platoon: PlatoonId,
        /// Request timestamp.
        timestamp: f64,
    },
    /// Leader acknowledges a leave.
    LeaveAck {
        /// The departing vehicle.
        member: PrincipalId,
        /// Its platoon.
        platoon: PlatoonId,
        /// Ack timestamp.
        timestamp: f64,
    },
    /// Leader orders the platoon to split: vehicles at `at_index` and behind
    /// form a new platoon.
    SplitCommand {
        /// The platoon being split.
        platoon: PlatoonId,
        /// First index of the new trailing platoon.
        at_index: u32,
        /// The id the trailing platoon will adopt.
        new_platoon: PlatoonId,
        /// Command timestamp.
        timestamp: f64,
    },
    /// Leader orders members to open a gap at `slot` for an entering vehicle.
    GapOpen {
        /// The platoon.
        platoon: PlatoonId,
        /// Slot index where the gap is opened.
        slot: u32,
        /// Extra metres of gap requested.
        extra_gap: f64,
        /// Command timestamp.
        timestamp: f64,
    },
}

const TAG_BEACON: u8 = 1;
const TAG_JOIN_REQUEST: u8 = 2;
const TAG_JOIN_ACCEPT: u8 = 3;
const TAG_JOIN_DENY: u8 = 4;
const TAG_LEAVE_REQUEST: u8 = 5;
const TAG_LEAVE_ACK: u8 = 6;
const TAG_SPLIT: u8 = 7;
const TAG_GAP_OPEN: u8 = 8;

impl PlatoonMessage {
    /// The message timestamp (used by anti-replay filters).
    pub fn timestamp(&self) -> f64 {
        match self {
            PlatoonMessage::Beacon(b) => b.timestamp,
            PlatoonMessage::JoinRequest { timestamp, .. }
            | PlatoonMessage::JoinAccept { timestamp, .. }
            | PlatoonMessage::JoinDeny { timestamp, .. }
            | PlatoonMessage::LeaveRequest { timestamp, .. }
            | PlatoonMessage::LeaveAck { timestamp, .. }
            | PlatoonMessage::SplitCommand { timestamp, .. }
            | PlatoonMessage::GapOpen { timestamp, .. } => *timestamp,
        }
    }

    /// Whether this is a manoeuvre (non-beacon) message — the class the
    /// fake-manoeuvre attack injects.
    pub fn is_maneuver(&self) -> bool {
        !matches!(self, PlatoonMessage::Beacon(_))
    }

    /// Encodes to the canonical wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            PlatoonMessage::Beacon(b) => {
                e.u8(TAG_BEACON)
                    .u64(b.sender.0)
                    .u32(b.platoon.0)
                    .u8(b.role.to_u8())
                    .u64(b.seq)
                    .f64(b.timestamp)
                    .f64(b.position)
                    .f64(b.speed)
                    .f64(b.accel)
                    .f64(b.length);
            }
            PlatoonMessage::JoinRequest {
                requester,
                platoon,
                position,
                timestamp,
            } => {
                e.u8(TAG_JOIN_REQUEST)
                    .u64(requester.0)
                    .u32(platoon.0)
                    .f64(*position)
                    .f64(*timestamp);
            }
            PlatoonMessage::JoinAccept {
                requester,
                platoon,
                slot,
                timestamp,
            } => {
                e.u8(TAG_JOIN_ACCEPT)
                    .u64(requester.0)
                    .u32(platoon.0)
                    .u32(*slot)
                    .f64(*timestamp);
            }
            PlatoonMessage::JoinDeny {
                requester,
                platoon,
                reason,
                timestamp,
            } => {
                e.u8(TAG_JOIN_DENY)
                    .u64(requester.0)
                    .u32(platoon.0)
                    .u8(reason.to_u8())
                    .f64(*timestamp);
            }
            PlatoonMessage::LeaveRequest {
                member,
                platoon,
                timestamp,
            } => {
                e.u8(TAG_LEAVE_REQUEST)
                    .u64(member.0)
                    .u32(platoon.0)
                    .f64(*timestamp);
            }
            PlatoonMessage::LeaveAck {
                member,
                platoon,
                timestamp,
            } => {
                e.u8(TAG_LEAVE_ACK)
                    .u64(member.0)
                    .u32(platoon.0)
                    .f64(*timestamp);
            }
            PlatoonMessage::SplitCommand {
                platoon,
                at_index,
                new_platoon,
                timestamp,
            } => {
                e.u8(TAG_SPLIT)
                    .u32(platoon.0)
                    .u32(*at_index)
                    .u32(new_platoon.0)
                    .f64(*timestamp);
            }
            PlatoonMessage::GapOpen {
                platoon,
                slot,
                extra_gap,
                timestamp,
            } => {
                e.u8(TAG_GAP_OPEN)
                    .u32(platoon.0)
                    .u32(*slot)
                    .f64(*extra_gap)
                    .f64(*timestamp);
            }
        }
        e.into_bytes()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unknown tags, truncation or trailing
    /// bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let msg = match d.u8()? {
            TAG_BEACON => PlatoonMessage::Beacon(Beacon {
                sender: PrincipalId(d.u64()?),
                platoon: PlatoonId(d.u32()?),
                role: Role::from_u8(d.u8()?)?,
                seq: d.u64()?,
                timestamp: d.f64()?,
                position: d.f64()?,
                speed: d.f64()?,
                accel: d.f64()?,
                length: d.f64()?,
            }),
            TAG_JOIN_REQUEST => PlatoonMessage::JoinRequest {
                requester: PrincipalId(d.u64()?),
                platoon: PlatoonId(d.u32()?),
                position: d.f64()?,
                timestamp: d.f64()?,
            },
            TAG_JOIN_ACCEPT => PlatoonMessage::JoinAccept {
                requester: PrincipalId(d.u64()?),
                platoon: PlatoonId(d.u32()?),
                slot: d.u32()?,
                timestamp: d.f64()?,
            },
            TAG_JOIN_DENY => PlatoonMessage::JoinDeny {
                requester: PrincipalId(d.u64()?),
                platoon: PlatoonId(d.u32()?),
                reason: JoinReject::from_u8(d.u8()?)?,
                timestamp: d.f64()?,
            },
            TAG_LEAVE_REQUEST => PlatoonMessage::LeaveRequest {
                member: PrincipalId(d.u64()?),
                platoon: PlatoonId(d.u32()?),
                timestamp: d.f64()?,
            },
            TAG_LEAVE_ACK => PlatoonMessage::LeaveAck {
                member: PrincipalId(d.u64()?),
                platoon: PlatoonId(d.u32()?),
                timestamp: d.f64()?,
            },
            TAG_SPLIT => PlatoonMessage::SplitCommand {
                platoon: PlatoonId(d.u32()?),
                at_index: d.u32()?,
                new_platoon: PlatoonId(d.u32()?),
                timestamp: d.f64()?,
            },
            TAG_GAP_OPEN => PlatoonMessage::GapOpen {
                platoon: PlatoonId(d.u32()?),
                slot: d.u32()?,
                extra_gap: d.f64()?,
                timestamp: d.f64()?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    context: "PlatoonMessage",
                })
            }
        };
        d.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_beacon() -> Beacon {
        Beacon {
            sender: PrincipalId(7),
            platoon: PlatoonId(1),
            role: Role::Member,
            seq: 42,
            timestamp: 12.5,
            position: 130.25,
            speed: 24.9,
            accel: -0.3,
            length: 16.5,
        }
    }

    fn all_messages() -> Vec<PlatoonMessage> {
        vec![
            PlatoonMessage::Beacon(sample_beacon()),
            PlatoonMessage::JoinRequest {
                requester: PrincipalId(9),
                platoon: PlatoonId(1),
                position: 55.0,
                timestamp: 3.0,
            },
            PlatoonMessage::JoinAccept {
                requester: PrincipalId(9),
                platoon: PlatoonId(1),
                slot: 4,
                timestamp: 3.1,
            },
            PlatoonMessage::JoinDeny {
                requester: PrincipalId(9),
                platoon: PlatoonId(1),
                reason: JoinReject::Full,
                timestamp: 3.1,
            },
            PlatoonMessage::LeaveRequest {
                member: PrincipalId(5),
                platoon: PlatoonId(1),
                timestamp: 9.0,
            },
            PlatoonMessage::LeaveAck {
                member: PrincipalId(5),
                platoon: PlatoonId(1),
                timestamp: 9.05,
            },
            PlatoonMessage::SplitCommand {
                platoon: PlatoonId(1),
                at_index: 3,
                new_platoon: PlatoonId(2),
                timestamp: 20.0,
            },
            PlatoonMessage::GapOpen {
                platoon: PlatoonId(1),
                slot: 2,
                extra_gap: 25.0,
                timestamp: 21.0,
            },
        ]
    }

    #[test]
    fn all_variants_roundtrip() {
        for msg in all_messages() {
            let bytes = msg.encode();
            let decoded = PlatoonMessage::decode(&bytes).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            PlatoonMessage::decode(&[99]),
            Err(DecodeError::BadTag { tag: 99, .. })
        ));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        for msg in all_messages() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    PlatoonMessage::decode(&bytes[..cut]).is_err(),
                    "truncated {msg:?} at {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = all_messages()[0].encode();
        bytes.push(0);
        assert!(matches!(
            PlatoonMessage::decode(&bytes),
            Err(DecodeError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn bad_role_tag_rejected() {
        let mut bytes = PlatoonMessage::Beacon(sample_beacon()).encode();
        // role byte sits at offset 1 (tag) + 8 (sender) + 4 (platoon) = 13.
        bytes[13] = 17;
        assert!(matches!(
            PlatoonMessage::decode(&bytes),
            Err(DecodeError::BadTag {
                tag: 17,
                context: "Role"
            })
        ));
    }

    #[test]
    fn timestamp_accessor_matches_fields() {
        for msg in all_messages() {
            assert!(msg.timestamp() > 0.0);
        }
    }

    #[test]
    fn maneuver_classification() {
        let msgs = all_messages();
        assert!(!msgs[0].is_maneuver());
        assert!(msgs[1..].iter().all(PlatoonMessage::is_maneuver));
    }

    #[test]
    fn encoding_is_canonical() {
        let m = PlatoonMessage::Beacon(sample_beacon());
        assert_eq!(m.encode(), m.encode());
    }
}
