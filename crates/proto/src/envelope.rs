//! Authentication envelopes: the wire wrapper that carries a platoon message
//! together with its credential and authenticator.
//!
//! Table III's "Secret and Public Keys" mechanism comes in the two flavours
//! the paper describes (§VI-A.1):
//!
//! * [`Envelope::sign`] — asymmetric: the message is signed under the
//!   sender's certified (pseudonymous) key and the certificate travels with
//!   it. Defeats impersonation, Sybil and fake-manoeuvre injection.
//! * [`Envelope::mac`] — symmetric: an HMAC under a shared platoon group
//!   key (distributed by an RSU or agreed via channel fading). Cheaper, but
//!   any group member can forge as any other — a distinction the
//!   impersonation experiment (F8) exercises.
//! * [`Envelope::plain`] — no protection: the undefended baseline.

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::messages::PlatoonMessage;
use platoon_crypto::cert::{verify_certificate, CertError, Certificate, PrincipalId};
use platoon_crypto::hmac::{hmac_sha256, verify_hmac_sha256};
use platoon_crypto::keys::{PublicKey, SymmetricKey};
use platoon_crypto::sha256::Digest;
use platoon_crypto::signature::{Signature, Signer};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why envelope verification failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuthError {
    /// Signature or MAC did not verify.
    BadAuthenticator,
    /// The attached certificate failed validation.
    BadCertificate(CertError),
    /// The envelope claims a sender that its certificate does not certify.
    SenderMismatch,
    /// Required credential material was absent.
    MissingCredential,
    /// The envelope required a kind of verification it does not carry
    /// (e.g. signature verification of a plain envelope).
    WrongScheme,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadAuthenticator => f.write_str("authenticator invalid"),
            AuthError::BadCertificate(e) => write!(f, "certificate invalid: {e}"),
            AuthError::SenderMismatch => f.write_str("sender does not match certificate subject"),
            AuthError::MissingCredential => f.write_str("credential material missing"),
            AuthError::WrongScheme => f.write_str("envelope does not carry the required scheme"),
        }
    }
}

impl std::error::Error for AuthError {}

/// The authentication scheme an envelope uses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AuthScheme {
    /// No authentication.
    Plain,
    /// HMAC-SHA256 under a shared group key.
    GroupMac {
        /// The 32-byte tag.
        tag: [u8; 32],
    },
    /// Encrypt-then-MAC under a shared group key: the payload bytes on the
    /// wire are ciphertext (keystream derived from the key and nonce), so a
    /// passive eavesdropper without the group key reads nothing — the
    /// confidentiality half of Table III's "keys" mechanism.
    EncryptedGroupMac {
        /// The 32-byte tag over (sender ‖ nonce ‖ ciphertext).
        tag: [u8; 32],
        /// Per-message nonce.
        nonce: u64,
    },
    /// Schnorr signature plus the sender's certificate.
    Signed {
        /// Signature over the payload bytes.
        signature: Signature,
        /// Certificate binding the claimed sender to the signing key.
        certificate: Certificate,
    },
}

/// A platoon message with its claimed sender and authenticator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Claimed application-level sender.
    pub sender: PrincipalId,
    /// Authentication scheme and material.
    pub auth: AuthScheme,
    /// Canonical encoded message bytes (the signed/MAC'd image).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Wraps a message with no authentication (the undefended baseline).
    pub fn plain(sender: PrincipalId, msg: &PlatoonMessage) -> Self {
        Envelope {
            sender,
            auth: AuthScheme::Plain,
            payload: msg.encode(),
        }
    }

    /// Wraps and MACs a message under a shared group key.
    pub fn mac(sender: PrincipalId, msg: &PlatoonMessage, key: &SymmetricKey) -> Self {
        let payload = msg.encode();
        let tag = hmac_sha256(key.as_bytes(), &mac_image(sender, &payload));
        Envelope {
            sender,
            auth: AuthScheme::GroupMac { tag: tag.0 },
            payload,
        }
    }

    /// Wraps, encrypts and MACs a message under a shared group key.
    ///
    /// `nonce` must be unique per sender per key epoch (the engine uses the
    /// beacon sequence counter).
    pub fn seal_encrypted(
        sender: PrincipalId,
        msg: &PlatoonMessage,
        key: &SymmetricKey,
        nonce: u64,
    ) -> Self {
        let plaintext = msg.encode();
        let ciphertext = xor_keystream(key, sender, nonce, &plaintext);
        let tag = hmac_sha256(key.as_bytes(), &enc_image(sender, nonce, &ciphertext));
        Envelope {
            sender,
            auth: AuthScheme::EncryptedGroupMac { tag: tag.0, nonce },
            payload: ciphertext,
        }
    }

    /// Decrypts and verifies an encrypted envelope, returning the inner
    /// message.
    pub fn open_encrypted(&self, key: &SymmetricKey) -> Result<PlatoonMessage, AuthError> {
        let AuthScheme::EncryptedGroupMac { tag, nonce } = &self.auth else {
            return Err(AuthError::WrongScheme);
        };
        if !verify_hmac_sha256(
            key.as_bytes(),
            &enc_image(self.sender, *nonce, &self.payload),
            &Digest(*tag),
        ) {
            return Err(AuthError::BadAuthenticator);
        }
        let plaintext = xor_keystream(key, self.sender, *nonce, &self.payload);
        PlatoonMessage::decode(&plaintext).map_err(|_| AuthError::BadAuthenticator)
    }

    /// Wraps and signs a message under a certified key.
    pub fn sign(
        sender: PrincipalId,
        msg: &PlatoonMessage,
        signer: &Signer,
        certificate: Certificate,
    ) -> Self {
        let payload = msg.encode();
        let signature = signer.sign_deterministic(&sign_image(sender, &payload));
        Envelope {
            sender,
            auth: AuthScheme::Signed {
                signature,
                certificate,
            },
            payload,
        }
    }

    /// Decodes the inner message without any verification — what an
    /// *undefended* receiver does, and what an eavesdropper gets for free.
    pub fn open_unverified(&self) -> Result<PlatoonMessage, DecodeError> {
        PlatoonMessage::decode(&self.payload)
    }

    /// Verifies a signed envelope against the trust anchor, returning the
    /// inner message.
    ///
    /// # Errors
    ///
    /// [`AuthError::WrongScheme`] for non-signed envelopes; otherwise the
    /// first failing check among certificate validation, subject match and
    /// signature verification.
    pub fn verify_signed(
        &self,
        authority_key: &PublicKey,
        authority_id: PrincipalId,
        now: f64,
    ) -> Result<PlatoonMessage, AuthError> {
        let AuthScheme::Signed {
            signature,
            certificate,
        } = &self.auth
        else {
            return Err(AuthError::WrongScheme);
        };
        verify_certificate(certificate, authority_key, authority_id, now)
            .map_err(AuthError::BadCertificate)?;
        if certificate.subject != self.sender {
            return Err(AuthError::SenderMismatch);
        }
        if !signature.verify(
            &certificate.public_key,
            &sign_image(self.sender, &self.payload),
        ) {
            return Err(AuthError::BadAuthenticator);
        }
        self.open_unverified()
            .map_err(|_| AuthError::BadAuthenticator)
    }

    /// Verifies a group-MAC envelope, returning the inner message.
    pub fn verify_mac(&self, key: &SymmetricKey) -> Result<PlatoonMessage, AuthError> {
        let AuthScheme::GroupMac { tag } = &self.auth else {
            return Err(AuthError::WrongScheme);
        };
        if !verify_hmac_sha256(
            key.as_bytes(),
            &mac_image(self.sender, &self.payload),
            &Digest(*tag),
        ) {
            return Err(AuthError::BadAuthenticator);
        }
        self.open_unverified()
            .map_err(|_| AuthError::BadAuthenticator)
    }

    /// Encodes the envelope for the air.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.sender.0);
        match &self.auth {
            AuthScheme::Plain => {
                e.u8(0);
            }
            AuthScheme::GroupMac { tag } => {
                e.u8(1).bytes(tag);
            }
            AuthScheme::EncryptedGroupMac { tag, nonce } => {
                e.u8(3).bytes(tag).u64(*nonce);
            }
            AuthScheme::Signed {
                signature,
                certificate,
            } => {
                e.u8(2)
                    .bytes(&signature.to_bytes())
                    .u64(certificate.subject.0)
                    .u64(certificate.public_key.element())
                    .f64(certificate.not_before)
                    .f64(certificate.not_after)
                    .u64(certificate.issuer.0)
                    .bytes(&certificate.signature.to_bytes());
            }
        }
        e.bytes(&self.payload);
        e.into_bytes()
    }

    /// Decodes an envelope from air bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let sender = PrincipalId(d.u64()?);
        let auth = match d.u8()? {
            0 => AuthScheme::Plain,
            1 => {
                let tag_bytes = d.bytes()?;
                let tag: [u8; 32] =
                    tag_bytes
                        .as_slice()
                        .try_into()
                        .map_err(|_| DecodeError::BadTag {
                            tag: 1,
                            context: "GroupMac tag length",
                        })?;
                AuthScheme::GroupMac { tag }
            }
            3 => {
                let tag_bytes = d.bytes()?;
                let tag: [u8; 32] =
                    tag_bytes
                        .as_slice()
                        .try_into()
                        .map_err(|_| DecodeError::BadTag {
                            tag: 3,
                            context: "EncryptedGroupMac tag length",
                        })?;
                let nonce = d.u64()?;
                AuthScheme::EncryptedGroupMac { tag, nonce }
            }
            2 => {
                let sig_bytes = d.bytes()?;
                let sig: [u8; 16] =
                    sig_bytes
                        .as_slice()
                        .try_into()
                        .map_err(|_| DecodeError::BadTag {
                            tag: 2,
                            context: "signature length",
                        })?;
                let subject = PrincipalId(d.u64()?);
                let pk_element = d.u64()?;
                let not_before = d.f64()?;
                let not_after = d.f64()?;
                let issuer = PrincipalId(d.u64()?);
                let ca_sig_bytes = d.bytes()?;
                let ca_sig: [u8; 16] =
                    ca_sig_bytes
                        .as_slice()
                        .try_into()
                        .map_err(|_| DecodeError::BadTag {
                            tag: 2,
                            context: "CA signature length",
                        })?;
                AuthScheme::Signed {
                    signature: Signature::from_bytes(&sig),
                    certificate: Certificate {
                        subject,
                        public_key: PublicKey::from_element(pk_element),
                        not_before,
                        not_after,
                        issuer,
                        signature: Signature::from_bytes(&ca_sig),
                    },
                }
            }
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    context: "AuthScheme",
                })
            }
        };
        let payload = d.bytes()?;
        d.finish()?;
        Ok(Envelope {
            sender,
            auth,
            payload,
        })
    }
}

/// Keystream XOR for the encrypt-then-MAC scheme: blocks of
/// HMAC(key, "penc" ‖ sender ‖ nonce ‖ counter). Simulation-grade stream
/// cipher with the right structural properties (key- and nonce-dependent,
/// deterministic, self-inverse).
fn xor_keystream(key: &SymmetricKey, sender: PrincipalId, nonce: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut counter: u64 = 0;
    let mut block = [0u8; 32];
    for (i, &b) in data.iter().enumerate() {
        let offset = i % 32;
        if offset == 0 {
            let mut image = Vec::with_capacity(28);
            image.extend_from_slice(b"penc");
            image.extend_from_slice(&sender.0.to_be_bytes());
            image.extend_from_slice(&nonce.to_be_bytes());
            image.extend_from_slice(&counter.to_be_bytes());
            block = hmac_sha256(key.as_bytes(), &image).0;
            counter += 1;
        }
        out.push(b ^ block[offset]);
    }
    out
}

/// The byte image covered by the encrypt-then-MAC tag.
fn enc_image(sender: PrincipalId, nonce: u64, ciphertext: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(ciphertext.len() + 20);
    v.extend_from_slice(b"penc-tag");
    v.extend_from_slice(&sender.0.to_be_bytes());
    v.extend_from_slice(&nonce.to_be_bytes());
    v.extend_from_slice(ciphertext);
    v
}

/// The byte image covered by a MAC (binds the claimed sender).
fn mac_image(sender: PrincipalId, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(payload.len() + 12);
    v.extend_from_slice(b"pmac");
    v.extend_from_slice(&sender.0.to_be_bytes());
    v.extend_from_slice(payload);
    v
}

/// The byte image covered by a signature.
fn sign_image(sender: PrincipalId, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(payload.len() + 12);
    v.extend_from_slice(b"psig");
    v.extend_from_slice(&sender.0.to_be_bytes());
    v.extend_from_slice(payload);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Beacon, PlatoonId, Role};
    use platoon_crypto::cert::CertificateAuthority;
    use platoon_crypto::keys::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn beacon(sender: u64) -> PlatoonMessage {
        PlatoonMessage::Beacon(Beacon {
            sender: PrincipalId(sender),
            platoon: PlatoonId(1),
            role: Role::Member,
            seq: 1,
            timestamp: 5.0,
            position: 100.0,
            speed: 25.0,
            accel: 0.0,
            length: 16.5,
        })
    }

    fn setup() -> (CertificateAuthority, Signer, Certificate) {
        let mut ca = CertificateAuthority::new(PrincipalId(1000), KeyPair::from_seed(1000));
        let kp = KeyPair::from_seed(7);
        let cert = ca.issue(PrincipalId(7), kp.public(), 0.0, 1000.0);
        (ca, Signer::new(kp), cert)
    }

    #[test]
    fn signed_envelope_verifies() {
        let (ca, signer, cert) = setup();
        let env = Envelope::sign(PrincipalId(7), &beacon(7), &signer, cert);
        let msg = env.verify_signed(&ca.public(), ca.id(), 5.0).unwrap();
        assert_eq!(msg, beacon(7));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (ca, signer, cert) = setup();
        let mut env = Envelope::sign(PrincipalId(7), &beacon(7), &signer, cert);
        let n = env.payload.len();
        env.payload[n - 1] ^= 1;
        assert_eq!(
            env.verify_signed(&ca.public(), ca.id(), 5.0),
            Err(AuthError::BadAuthenticator)
        );
    }

    #[test]
    fn sender_spoof_rejected() {
        // Attacker replays someone's envelope but rewrites the sender field.
        let (ca, signer, cert) = setup();
        let mut env = Envelope::sign(PrincipalId(7), &beacon(7), &signer, cert);
        env.sender = PrincipalId(8);
        let err = env.verify_signed(&ca.public(), ca.id(), 5.0).unwrap_err();
        assert!(matches!(
            err,
            AuthError::SenderMismatch | AuthError::BadAuthenticator
        ));
    }

    #[test]
    fn self_signed_certificate_rejected() {
        // Sybil attacker makes its own key and "certificate" without the CA.
        let (ca, _, _) = setup();
        let fake_kp = KeyPair::from_seed(666);
        let mut fake_ca = CertificateAuthority::new(PrincipalId(666), KeyPair::from_seed(666));
        let fake_cert = fake_ca.issue(PrincipalId(66), fake_kp.public(), 0.0, 1000.0);
        let env = Envelope::sign(
            PrincipalId(66),
            &beacon(66),
            &Signer::new(fake_kp),
            fake_cert,
        );
        assert!(matches!(
            env.verify_signed(&ca.public(), ca.id(), 5.0),
            Err(AuthError::BadCertificate(_))
        ));
    }

    #[test]
    fn expired_certificate_rejected() {
        let (ca, signer, cert) = setup();
        let env = Envelope::sign(PrincipalId(7), &beacon(7), &signer, cert);
        assert!(matches!(
            env.verify_signed(&ca.public(), ca.id(), 2000.0),
            Err(AuthError::BadCertificate(CertError::Expired))
        ));
    }

    #[test]
    fn mac_envelope_verifies_and_rejects_wrong_key() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = SymmetricKey::generate(&mut rng);
        let other = SymmetricKey::generate(&mut rng);
        let env = Envelope::mac(PrincipalId(7), &beacon(7), &key);
        assert_eq!(env.verify_mac(&key).unwrap(), beacon(7));
        assert_eq!(env.verify_mac(&other), Err(AuthError::BadAuthenticator));
    }

    #[test]
    fn mac_binds_sender_field() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = SymmetricKey::generate(&mut rng);
        let mut env = Envelope::mac(PrincipalId(7), &beacon(7), &key);
        env.sender = PrincipalId(8);
        assert_eq!(env.verify_mac(&key), Err(AuthError::BadAuthenticator));
    }

    #[test]
    fn plain_envelope_opens_but_cannot_verify() {
        let env = Envelope::plain(PrincipalId(7), &beacon(7));
        assert_eq!(env.open_unverified().unwrap(), beacon(7));
        let (ca, ..) = setup();
        assert_eq!(
            env.verify_signed(&ca.public(), ca.id(), 5.0),
            Err(AuthError::WrongScheme)
        );
        let key = SymmetricKey::derive(b"k", "x");
        assert_eq!(env.verify_mac(&key), Err(AuthError::WrongScheme));
    }

    #[test]
    fn encrypted_envelope_roundtrip_and_confidentiality() {
        let key = SymmetricKey::derive(b"group", "enc");
        let msg = beacon(7);
        let env = Envelope::seal_encrypted(PrincipalId(7), &msg, &key, 42);
        // The wire payload is ciphertext: decoding it directly fails, and it
        // differs from the plaintext encoding.
        assert_ne!(env.payload, msg.encode());
        assert!(env.open_unverified().is_err(), "ciphertext must not parse");
        // The key holder recovers the message.
        assert_eq!(env.open_encrypted(&key).unwrap(), msg);
        // The wrong key fails the tag.
        let other = SymmetricKey::derive(b"other", "enc");
        assert_eq!(env.open_encrypted(&other), Err(AuthError::BadAuthenticator));
    }

    #[test]
    fn encrypted_envelope_tamper_rejected() {
        let key = SymmetricKey::derive(b"group", "enc");
        let mut env = Envelope::seal_encrypted(PrincipalId(7), &beacon(7), &key, 1);
        let n = env.payload.len();
        env.payload[n - 1] ^= 1;
        assert_eq!(env.open_encrypted(&key), Err(AuthError::BadAuthenticator));
    }

    #[test]
    fn nonces_randomise_ciphertext() {
        let key = SymmetricKey::derive(b"group", "enc");
        let a = Envelope::seal_encrypted(PrincipalId(7), &beacon(7), &key, 1);
        let b = Envelope::seal_encrypted(PrincipalId(7), &beacon(7), &key, 2);
        assert_ne!(
            a.payload, b.payload,
            "same message, different nonce, different bytes"
        );
    }

    #[test]
    fn encrypted_wire_roundtrip() {
        let key = SymmetricKey::derive(b"group", "enc");
        let env = Envelope::seal_encrypted(PrincipalId(7), &beacon(7), &key, 9);
        let back = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.open_encrypted(&key).unwrap(), beacon(7));
    }

    #[test]
    fn wire_roundtrip_all_schemes() {
        let (_, signer, cert) = setup();
        let key = SymmetricKey::derive(b"group", "mac");
        let envs = vec![
            Envelope::plain(PrincipalId(7), &beacon(7)),
            Envelope::mac(PrincipalId(7), &beacon(7), &key),
            Envelope::sign(PrincipalId(7), &beacon(7), &signer, cert),
        ];
        for env in envs {
            let bytes = env.encode();
            let back = Envelope::decode(&bytes).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn signed_envelope_survives_wire_roundtrip_and_still_verifies() {
        let (ca, signer, cert) = setup();
        let env = Envelope::sign(PrincipalId(7), &beacon(7), &signer, cert);
        let back = Envelope::decode(&env.encode()).unwrap();
        assert!(back.verify_signed(&ca.public(), ca.id(), 5.0).is_ok());
    }

    #[test]
    fn malformed_wire_bytes_rejected() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[0; 9]).is_err());
        let env = Envelope::plain(PrincipalId(7), &beacon(7));
        let bytes = env.encode();
        for cut in 0..bytes.len() {
            assert!(Envelope::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }
}
