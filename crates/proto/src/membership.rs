//! Platoon membership: the leader's authoritative view of who is in the
//! platoon and in what order.
//!
//! The roster is the asset several attacks target: Sybil ghosts inflate it
//! (§V-A.2, "the platoon leader \[thinks\] there are more vehicles part of the
//! platoon than there really are"), join-flood DoS fills it with junk so
//! legitimate vehicles cannot connect (§V-D), and fake leave/split messages
//! shrink or break it (§V-A.3).

use crate::messages::PlatoonId;
use platoon_crypto::cert::PrincipalId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from roster mutations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RosterError {
    /// The platoon is at `max_size`.
    Full,
    /// The principal is already a member.
    AlreadyMember,
    /// The principal is not a member.
    NotMember,
    /// A split index was out of range (must leave ≥1 vehicle on each side).
    BadSplitIndex,
    /// The leader cannot be removed or relocated.
    LeaderImmutable,
}

impl fmt::Display for RosterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RosterError::Full => f.write_str("platoon is full"),
            RosterError::AlreadyMember => f.write_str("vehicle already a member"),
            RosterError::NotMember => f.write_str("vehicle is not a member"),
            RosterError::BadSplitIndex => f.write_str("split index out of range"),
            RosterError::LeaderImmutable => f.write_str("the leader cannot be removed"),
        }
    }
}

impl std::error::Error for RosterError {}

/// Ordered platoon membership with the leader at index 0.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Roster {
    /// The platoon's identifier.
    pub id: PlatoonId,
    /// Maximum total size including the leader.
    pub max_size: usize,
    members: Vec<PrincipalId>,
}

impl Roster {
    /// Creates a platoon with only its leader.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn new(id: PlatoonId, leader: PrincipalId, max_size: usize) -> Self {
        assert!(max_size >= 1, "max_size must be at least 1");
        Roster {
            id,
            max_size,
            members: vec![leader],
        }
    }

    /// The leader's identity.
    pub fn leader(&self) -> PrincipalId {
        self.members[0]
    }

    /// Total size including the leader.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the roster holds only the leader.
    pub fn is_empty(&self) -> bool {
        self.members.len() == 1
    }

    /// Whether the platoon can accept another member.
    pub fn has_capacity(&self) -> bool {
        self.members.len() < self.max_size
    }

    /// Ordered members including the leader.
    pub fn members(&self) -> &[PrincipalId] {
        &self.members
    }

    /// Index of a principal, if present (0 = leader).
    pub fn index_of(&self, id: PrincipalId) -> Option<usize> {
        self.members.iter().position(|m| *m == id)
    }

    /// Whether the principal is in the platoon.
    pub fn contains(&self, id: PrincipalId) -> bool {
        self.index_of(id).is_some()
    }

    /// The member directly ahead of `id`, if any.
    pub fn predecessor_of(&self, id: PrincipalId) -> Option<PrincipalId> {
        let idx = self.index_of(id)?;
        if idx == 0 {
            None
        } else {
            Some(self.members[idx - 1])
        }
    }

    /// Admits a vehicle at the tail of the platoon, returning its index.
    ///
    /// # Errors
    ///
    /// [`RosterError::Full`] or [`RosterError::AlreadyMember`].
    pub fn admit_tail(&mut self, id: PrincipalId) -> Result<usize, RosterError> {
        self.admit_at(id, self.members.len())
    }

    /// Admits a vehicle at a specific slot (1..=len), shifting later members
    /// back.
    ///
    /// # Errors
    ///
    /// [`RosterError::Full`], [`RosterError::AlreadyMember`], or
    /// [`RosterError::LeaderImmutable`] for slot 0.
    pub fn admit_at(&mut self, id: PrincipalId, slot: usize) -> Result<usize, RosterError> {
        if !self.has_capacity() {
            return Err(RosterError::Full);
        }
        if self.contains(id) {
            return Err(RosterError::AlreadyMember);
        }
        if slot == 0 {
            return Err(RosterError::LeaderImmutable);
        }
        let slot = slot.min(self.members.len());
        self.members.insert(slot, id);
        Ok(slot)
    }

    /// Removes a member (not the leader).
    ///
    /// # Errors
    ///
    /// [`RosterError::NotMember`] or [`RosterError::LeaderImmutable`].
    pub fn remove(&mut self, id: PrincipalId) -> Result<usize, RosterError> {
        let idx = self.index_of(id).ok_or(RosterError::NotMember)?;
        if idx == 0 {
            return Err(RosterError::LeaderImmutable);
        }
        self.members.remove(idx);
        Ok(idx)
    }

    /// Splits the platoon: members at `at_index` and beyond form a new
    /// platoon led by the vehicle at `at_index`.
    ///
    /// # Errors
    ///
    /// [`RosterError::BadSplitIndex`] unless `1 <= at_index < len`.
    pub fn split_at(&mut self, at_index: usize, new_id: PlatoonId) -> Result<Roster, RosterError> {
        if at_index == 0 || at_index >= self.members.len() {
            return Err(RosterError::BadSplitIndex);
        }
        let tail = self.members.split_off(at_index);
        Ok(Roster {
            id: new_id,
            max_size: self.max_size,
            members: tail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PrincipalId {
        PrincipalId(n)
    }

    fn roster_of(n: usize) -> Roster {
        let mut r = Roster::new(PlatoonId(1), p(0), 16);
        for i in 1..n {
            r.admit_tail(p(i as u64)).unwrap();
        }
        r
    }

    #[test]
    fn new_roster_has_only_leader() {
        let r = Roster::new(PlatoonId(1), p(9), 8);
        assert_eq!(r.leader(), p(9));
        assert_eq!(r.len(), 1);
        assert!(r.is_empty());
        assert!(r.has_capacity());
    }

    #[test]
    fn admit_tail_appends_in_order() {
        let r = roster_of(4);
        assert_eq!(r.members(), &[p(0), p(1), p(2), p(3)]);
        assert_eq!(r.index_of(p(2)), Some(2));
        assert_eq!(r.predecessor_of(p(2)), Some(p(1)));
        assert_eq!(r.predecessor_of(p(0)), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut r = Roster::new(PlatoonId(1), p(0), 2);
        r.admit_tail(p(1)).unwrap();
        assert_eq!(r.admit_tail(p(2)), Err(RosterError::Full));
    }

    #[test]
    fn duplicate_admission_rejected() {
        let mut r = roster_of(3);
        assert_eq!(r.admit_tail(p(1)), Err(RosterError::AlreadyMember));
    }

    #[test]
    fn admit_at_slot_shifts_members() {
        let mut r = roster_of(3); // 0,1,2
        let slot = r.admit_at(p(9), 1).unwrap();
        assert_eq!(slot, 1);
        assert_eq!(r.members(), &[p(0), p(9), p(1), p(2)]);
    }

    #[test]
    fn admit_at_slot_zero_rejected() {
        let mut r = roster_of(2);
        assert_eq!(r.admit_at(p(9), 0), Err(RosterError::LeaderImmutable));
    }

    #[test]
    fn admit_beyond_tail_clamps() {
        let mut r = roster_of(2);
        let slot = r.admit_at(p(9), 99).unwrap();
        assert_eq!(slot, 2);
    }

    #[test]
    fn remove_member() {
        let mut r = roster_of(4);
        assert_eq!(r.remove(p(2)), Ok(2));
        assert_eq!(r.members(), &[p(0), p(1), p(3)]);
        assert_eq!(r.remove(p(2)), Err(RosterError::NotMember));
    }

    #[test]
    fn leader_cannot_be_removed() {
        let mut r = roster_of(3);
        assert_eq!(r.remove(p(0)), Err(RosterError::LeaderImmutable));
    }

    #[test]
    fn split_divides_membership() {
        let mut r = roster_of(5); // 0..4
        let tail = r.split_at(3, PlatoonId(2)).unwrap();
        assert_eq!(r.members(), &[p(0), p(1), p(2)]);
        assert_eq!(tail.members(), &[p(3), p(4)]);
        assert_eq!(tail.leader(), p(3));
        assert_eq!(tail.id, PlatoonId(2));
    }

    #[test]
    fn bad_split_indices_rejected() {
        let mut r = roster_of(3);
        assert_eq!(
            r.split_at(0, PlatoonId(2)).unwrap_err(),
            RosterError::BadSplitIndex
        );
        assert_eq!(
            r.split_at(3, PlatoonId(2)).unwrap_err(),
            RosterError::BadSplitIndex
        );
    }

    #[test]
    #[should_panic(expected = "max_size")]
    fn zero_capacity_panics() {
        Roster::new(PlatoonId(1), p(0), 0);
    }
}
