//! Manoeuvre protocol: the leader-side join/leave/split engine.
//!
//! §II-B: "Join/leave members when joining are, at the start, driven by human
//! drivers ... once they are in a suitable and safe position, they switch to
//! automated driving." The engine models that lifecycle: a join is *pending*
//! (a gap is held open) until the joiner physically arrives, then the roster
//! admits it. The pending phase is precisely what the Sybil attack exploits
//! (ghost vehicles request joins and never arrive, §V-A.2) and what the
//! join-flood DoS saturates (§V-D) — so the engine exposes backpressure
//! limits, timeouts, and gap accounting as measurable state.

use crate::membership::{Roster, RosterError};
use crate::messages::{JoinReject, PlatoonId};
use platoon_crypto::cert::PrincipalId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tunable limits of the manoeuvre engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ManeuverConfig {
    /// Extra gap opened for each entering vehicle, in metres.
    pub join_gap_extra: f64,
    /// Seconds a pending join may hold its gap before it is abandoned.
    pub join_timeout: f64,
    /// Maximum concurrently pending joins; beyond this the leader answers
    /// `Busy` (the DoS backpressure knob).
    pub max_pending_joins: usize,
    /// Maximum join requests the leader will *process* per second; beyond
    /// this requests are dropped unanswered (models a saturated leader).
    pub max_requests_per_second: f64,
}

impl Default for ManeuverConfig {
    fn default() -> Self {
        ManeuverConfig {
            join_gap_extra: 25.0,
            join_timeout: 15.0,
            max_pending_joins: 3,
            max_requests_per_second: 20.0,
        }
    }
}

/// A join that has been accepted but whose vehicle has not yet merged.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PendingJoin {
    /// The joining vehicle.
    pub requester: PrincipalId,
    /// Slot reserved for it.
    pub slot: usize,
    /// When the join was accepted.
    pub accepted_at: f64,
}

/// The leader's answer to a join request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum JoinOutcome {
    /// Accepted; a gap is being opened at `slot`.
    Accept {
        /// Reserved slot index.
        slot: usize,
    },
    /// Denied with a reason.
    Deny(JoinReject),
    /// Dropped without an answer (leader saturated).
    Dropped,
}

/// Cumulative manoeuvre statistics (inputs to the DoS/Sybil experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ManeuverStats {
    /// Join requests received.
    pub join_requests: u64,
    /// Joins accepted.
    pub joins_accepted: u64,
    /// Joins denied.
    pub joins_denied: u64,
    /// Join requests dropped by rate limiting.
    pub joins_dropped: u64,
    /// Joins completed (vehicle merged).
    pub joins_completed: u64,
    /// Pending joins abandoned on timeout (ghost vehicles).
    pub joins_timed_out: u64,
    /// Leaves processed.
    pub leaves: u64,
    /// Splits executed.
    pub splits: u64,
    /// Cumulative gap-seconds held open for joins that never completed.
    pub wasted_gap_seconds: f64,
}

/// Leader-side manoeuvre engine wrapping the roster.
#[derive(Clone, Debug)]
pub struct ManeuverEngine {
    roster: Roster,
    config: ManeuverConfig,
    pending: HashMap<PrincipalId, PendingJoin>,
    stats: ManeuverStats,
    /// Request-processing tokens (token bucket for rate limiting).
    tokens: f64,
    last_refill: f64,
}

impl ManeuverEngine {
    /// Creates the engine around an existing roster.
    pub fn new(roster: Roster, config: ManeuverConfig) -> Self {
        ManeuverEngine {
            roster,
            config,
            pending: HashMap::new(),
            stats: ManeuverStats::default(),
            tokens: config.max_requests_per_second,
            last_refill: 0.0,
        }
    }

    /// The current roster.
    pub fn roster(&self) -> &Roster {
        &self.roster
    }

    /// Mutable roster access, for leader-side membership surgery (merges,
    /// administrative evictions). Protocol-driven changes should go through
    /// the request handlers instead.
    pub fn roster_mut(&mut self) -> &mut Roster {
        &mut self.roster
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ManeuverStats {
        self.stats
    }

    /// Currently pending joins.
    pub fn pending(&self) -> impl Iterator<Item = &PendingJoin> {
        self.pending.values()
    }

    /// Extra gap metres currently held open across all pending joins.
    pub fn held_gap_metres(&self) -> f64 {
        self.pending.len() as f64 * self.config.join_gap_extra
    }

    fn refill_tokens(&mut self, now: f64) {
        let dt = (now - self.last_refill).max(0.0);
        self.tokens = (self.tokens + dt * self.config.max_requests_per_second)
            .min(self.config.max_requests_per_second);
        self.last_refill = now;
    }

    /// Processes a join request at time `now`.
    ///
    /// `credentials_ok` is the verdict of whatever authentication layer is
    /// deployed (always `true` in the undefended baseline — the paper's
    /// point is that without credentials the leader cannot tell ghosts from
    /// vehicles).
    pub fn handle_join_request(
        &mut self,
        requester: PrincipalId,
        now: f64,
        credentials_ok: bool,
    ) -> JoinOutcome {
        self.handle_join_request_with_slot(requester, now, credentials_ok, None)
    }

    /// Like [`ManeuverEngine::handle_join_request`] but with a requested slot
    /// (from the requester's claimed road position). Mid-platoon slots force
    /// a gap to be opened inside the string — the lever the Sybil attack
    /// pulls to "leave the platoon with large gaps in it" (§V-A.2).
    pub fn handle_join_request_with_slot(
        &mut self,
        requester: PrincipalId,
        now: f64,
        credentials_ok: bool,
        slot_hint: Option<usize>,
    ) -> JoinOutcome {
        self.stats.join_requests += 1;
        self.refill_tokens(now);
        if self.tokens < 1.0 {
            self.stats.joins_dropped += 1;
            return JoinOutcome::Dropped;
        }
        self.tokens -= 1.0;

        if !credentials_ok {
            self.stats.joins_denied += 1;
            return JoinOutcome::Deny(JoinReject::BadCredentials);
        }
        if self.pending.contains_key(&requester) {
            // Duplicate request: re-acknowledge the existing slot.
            let slot = self.pending[&requester].slot;
            return JoinOutcome::Accept { slot };
        }
        if self.pending.len() >= self.config.max_pending_joins {
            self.stats.joins_denied += 1;
            return JoinOutcome::Deny(JoinReject::Busy);
        }
        if self.roster.len() + self.pending.len() >= self.roster.max_size {
            self.stats.joins_denied += 1;
            return JoinOutcome::Deny(JoinReject::Full);
        }
        let tail_slot = self.roster.len() + self.pending.len();
        let slot = slot_hint
            .map(|s| s.clamp(1, tail_slot))
            .unwrap_or(tail_slot);
        self.pending.insert(
            requester,
            PendingJoin {
                requester,
                slot,
                accepted_at: now,
            },
        );
        self.stats.joins_accepted += 1;
        JoinOutcome::Accept { slot }
    }

    /// Marks a pending join as physically completed; the vehicle enters the
    /// roster.
    ///
    /// # Errors
    ///
    /// Propagates [`RosterError`] (e.g. the roster filled up in between), or
    /// returns [`RosterError::NotMember`] if no such join was pending.
    pub fn complete_join(&mut self, requester: PrincipalId) -> Result<usize, RosterError> {
        let pending = self
            .pending
            .remove(&requester)
            .ok_or(RosterError::NotMember)?;
        match self.roster.admit_at(requester, pending.slot) {
            Ok(idx) => {
                self.stats.joins_completed += 1;
                Ok(idx)
            }
            Err(e) => {
                self.pending.insert(requester, pending);
                Err(e)
            }
        }
    }

    /// Expires pending joins older than the timeout, accounting the wasted
    /// gap time. Returns the expired requesters.
    pub fn expire_pending(&mut self, now: f64) -> Vec<PrincipalId> {
        let timeout = self.config.join_timeout;
        let expired: Vec<PrincipalId> = self
            .pending
            .values()
            .filter(|p| now - p.accepted_at > timeout)
            .map(|p| p.requester)
            .collect();
        for id in &expired {
            let p = self.pending.remove(id).expect("collected from map");
            self.stats.joins_timed_out += 1;
            self.stats.wasted_gap_seconds += now - p.accepted_at;
        }
        expired
    }

    /// Processes a leave request (member departs immediately).
    ///
    /// # Errors
    ///
    /// Propagates [`RosterError`].
    pub fn handle_leave(&mut self, member: PrincipalId) -> Result<usize, RosterError> {
        let idx = self.roster.remove(member)?;
        self.stats.leaves += 1;
        Ok(idx)
    }

    /// Executes a split command, returning the new trailing roster.
    ///
    /// # Errors
    ///
    /// Propagates [`RosterError::BadSplitIndex`].
    pub fn handle_split(
        &mut self,
        at_index: usize,
        new_id: PlatoonId,
    ) -> Result<Roster, RosterError> {
        let tail = self.roster.split_at(at_index, new_id)?;
        self.stats.splits += 1;
        Ok(tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PrincipalId {
        PrincipalId(n)
    }

    fn engine(max_size: usize) -> ManeuverEngine {
        ManeuverEngine::new(
            Roster::new(PlatoonId(1), p(0), max_size),
            ManeuverConfig::default(),
        )
    }

    #[test]
    fn join_lifecycle_accept_then_complete() {
        let mut e = engine(8);
        let outcome = e.handle_join_request(p(1), 1.0, true);
        assert_eq!(outcome, JoinOutcome::Accept { slot: 1 });
        assert_eq!(e.held_gap_metres(), 25.0);
        assert_eq!(e.complete_join(p(1)), Ok(1));
        assert!(e.roster().contains(p(1)));
        assert_eq!(e.held_gap_metres(), 0.0);
        assert_eq!(e.stats().joins_completed, 1);
    }

    #[test]
    fn bad_credentials_denied() {
        let mut e = engine(8);
        assert_eq!(
            e.handle_join_request(p(1), 1.0, false),
            JoinOutcome::Deny(JoinReject::BadCredentials)
        );
    }

    #[test]
    fn pending_limit_gives_busy() {
        let mut e = engine(16);
        for i in 1..=3 {
            assert!(matches!(
                e.handle_join_request(p(i), 1.0, true),
                JoinOutcome::Accept { .. }
            ));
        }
        assert_eq!(
            e.handle_join_request(p(4), 1.0, true),
            JoinOutcome::Deny(JoinReject::Busy)
        );
    }

    #[test]
    fn full_roster_denied() {
        let mut e = engine(2);
        assert!(matches!(
            e.handle_join_request(p(1), 1.0, true),
            JoinOutcome::Accept { .. }
        ));
        assert_eq!(
            e.handle_join_request(p(2), 1.0, true),
            JoinOutcome::Deny(JoinReject::Full)
        );
    }

    #[test]
    fn duplicate_request_reacknowledges_same_slot() {
        let mut e = engine(8);
        let JoinOutcome::Accept { slot } = e.handle_join_request(p(1), 1.0, true) else {
            panic!("expected accept");
        };
        assert_eq!(
            e.handle_join_request(p(1), 1.5, true),
            JoinOutcome::Accept { slot }
        );
        assert_eq!(e.stats().joins_accepted, 1);
    }

    #[test]
    fn rate_limit_drops_flood() {
        let mut e = engine(128);
        // 100 requests at the same instant with a 20/s budget: most drop.
        let mut dropped = 0;
        for i in 1..=100 {
            if e.handle_join_request(p(i), 1.0, false) == JoinOutcome::Dropped {
                dropped += 1;
            }
        }
        assert!(dropped >= 70, "expected heavy dropping, got {dropped}");
        // After time passes, tokens refill.
        assert_ne!(
            e.handle_join_request(p(200), 10.0, false),
            JoinOutcome::Dropped
        );
    }

    #[test]
    fn ghost_joins_expire_and_account_wasted_gap() {
        let mut e = engine(8);
        e.handle_join_request(p(1), 0.0, true);
        e.handle_join_request(p(2), 1.0, true);
        assert!(e.expire_pending(10.0).is_empty(), "not yet timed out");
        let expired = e.expire_pending(20.0);
        assert_eq!(expired.len(), 2);
        let stats = e.stats();
        assert_eq!(stats.joins_timed_out, 2);
        assert!((stats.wasted_gap_seconds - (20.0 + 19.0)).abs() < 1e-9);
        assert_eq!(e.held_gap_metres(), 0.0);
    }

    #[test]
    fn completing_unknown_join_fails() {
        let mut e = engine(8);
        assert_eq!(e.complete_join(p(9)), Err(RosterError::NotMember));
    }

    #[test]
    fn leave_and_split_update_roster() {
        let mut e = engine(8);
        for i in 1..=4 {
            e.handle_join_request(p(i), 0.0, true);
            e.complete_join(p(i)).unwrap();
        }
        assert_eq!(e.handle_leave(p(2)), Ok(2));
        assert_eq!(e.roster().len(), 4);
        let tail = e.handle_split(2, PlatoonId(9)).unwrap();
        assert_eq!(e.roster().len(), 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(e.stats().leaves, 1);
        assert_eq!(e.stats().splits, 1);
    }

    #[test]
    fn slot_hint_reserves_mid_platoon_slot() {
        let mut e = engine(8);
        for i in 1..=3 {
            e.handle_join_request(p(i), 0.0, true);
            e.complete_join(p(i)).unwrap();
        }
        assert_eq!(
            e.handle_join_request_with_slot(p(9), 1.0, true, Some(2)),
            JoinOutcome::Accept { slot: 2 }
        );
        // Hints are clamped into the valid range.
        assert_eq!(
            e.handle_join_request_with_slot(p(10), 1.0, true, Some(99)),
            JoinOutcome::Accept { slot: 5 }
        );
    }

    #[test]
    fn pending_join_survives_roster_full_race() {
        let mut e = engine(3);
        e.handle_join_request(p(1), 0.0, true);
        e.handle_join_request(p(2), 0.0, true);
        e.complete_join(p(1)).unwrap();
        e.complete_join(p(2)).unwrap();
        // Roster now full (leader + 2). A pending join cannot complete.
        // (Reachable when the config allows over-subscription.)
        let mut e2 = engine(2);
        e2.handle_join_request(p(1), 0.0, true);
        e2.complete_join(p(1)).unwrap();
        assert_eq!(e2.roster().len(), 2);
    }
}
