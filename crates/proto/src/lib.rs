//! # platoon-proto
//!
//! The platoon management protocol: message formats, authentication
//! envelopes, membership and manoeuvre state machines (reproduction of
//! Taylor et al., DSN-W 2021).
//!
//! * [`codec`] — deterministic binary wire codec (signatures cover these
//!   exact bytes).
//! * [`messages`] — CAM-style beacons and join/leave/split/gap manoeuvre
//!   messages.
//! * [`envelope`] — plain / group-MAC / signed+certificate envelopes
//!   (Table III "Secret and Public Keys").
//! * [`membership`] — the leader's ordered roster.
//! * [`maneuver`] — the join/leave/split engine with the backpressure and
//!   timeout mechanics that the Sybil and DoS experiments measure.
//!
//! # Examples
//!
//! ```
//! use platoon_proto::prelude::*;
//! use platoon_crypto::{CertificateAuthority, KeyPair, PrincipalId, Signer};
//!
//! // The trusted authority provisions a vehicle.
//! let mut ca = CertificateAuthority::new(PrincipalId(1000), KeyPair::from_seed(1000));
//! let kp = KeyPair::from_seed(7);
//! let cert = ca.issue(PrincipalId(7), kp.public(), 0.0, 3600.0);
//!
//! // The vehicle signs a join request; the leader verifies it.
//! let msg = PlatoonMessage::JoinRequest {
//!     requester: PrincipalId(7),
//!     platoon: PlatoonId(1),
//!     position: 120.0,
//!     timestamp: 10.0,
//! };
//! let env = Envelope::sign(PrincipalId(7), &msg, &Signer::new(kp), cert);
//! let verified = env.verify_signed(&ca.public(), ca.id(), 10.0).unwrap();
//! assert_eq!(verified, msg);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod envelope;
pub mod maneuver;
pub mod membership;
pub mod messages;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::codec::{DecodeError, Decoder, Encoder};
    pub use crate::envelope::{AuthError, AuthScheme, Envelope};
    pub use crate::maneuver::{
        JoinOutcome, ManeuverConfig, ManeuverEngine, ManeuverStats, PendingJoin,
    };
    pub use crate::membership::{Roster, RosterError};
    pub use crate::messages::{Beacon, JoinReject, PlatoonId, PlatoonMessage, Role};
}

#[cfg(test)]
mod proptests {
    use crate::messages::{Beacon, PlatoonId, PlatoonMessage, Role};
    use crate::prelude::Envelope;
    use platoon_crypto::cert::PrincipalId;
    use platoon_crypto::keys::SymmetricKey;
    use proptest::prelude::*;

    fn arb_role() -> impl Strategy<Value = Role> {
        prop_oneof![
            Just(Role::Leader),
            Just(Role::Member),
            Just(Role::JoinLeave),
            Just(Role::Free),
        ]
    }

    fn arb_beacon() -> impl Strategy<Value = Beacon> {
        (
            any::<u64>(),
            any::<u32>(),
            arb_role(),
            any::<u64>(),
            -1e6f64..1e6,
            -1e6f64..1e6,
            0.0f64..60.0,
            -10.0f64..5.0,
            1.0f64..30.0,
        )
            .prop_map(
                |(sender, platoon, role, seq, timestamp, position, speed, accel, length)| Beacon {
                    sender: PrincipalId(sender),
                    platoon: PlatoonId(platoon),
                    role,
                    seq,
                    timestamp,
                    position,
                    speed,
                    accel,
                    length,
                },
            )
    }

    proptest! {
        /// Any beacon round-trips through the wire codec bit-exactly.
        #[test]
        fn beacon_roundtrip(b in arb_beacon()) {
            let msg = PlatoonMessage::Beacon(b);
            prop_assert_eq!(PlatoonMessage::decode(&msg.encode()).unwrap(), msg);
        }

        /// Random bytes never panic the decoder (they error or decode).
        #[test]
        fn decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = PlatoonMessage::decode(&bytes);
            let _ = Envelope::decode(&bytes);
        }

        /// A MAC envelope never verifies after any single-byte payload flip.
        #[test]
        fn mac_envelope_tamper_proof(b in arb_beacon(), idx in 0usize..1000) {
            let msg = PlatoonMessage::Beacon(b);
            let key = SymmetricKey::derive(b"proptest", "mac");
            let mut env = Envelope::mac(PrincipalId(1), &msg, &key);
            prop_assert!(env.verify_mac(&key).is_ok());
            let i = idx % env.payload.len();
            env.payload[i] ^= 0x01;
            prop_assert!(env.verify_mac(&key).is_err());
        }

        /// Envelope wire round-trip preserves verification status.
        #[test]
        fn envelope_wire_roundtrip(b in arb_beacon()) {
            let msg = PlatoonMessage::Beacon(b);
            let key = SymmetricKey::derive(b"proptest", "wire");
            let env = Envelope::mac(PrincipalId(2), &msg, &key);
            let back = Envelope::decode(&env.encode()).unwrap();
            prop_assert_eq!(&back, &env);
            prop_assert!(back.verify_mac(&key).is_ok());
        }
    }
}
