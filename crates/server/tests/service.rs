//! Integration tests for the job service: cache persistence properties,
//! concurrency/deduplication, the TCP protocol, and budget timeouts.

use platoon_server::cache::{CacheConfig, ResultCache};
use platoon_server::grids::experiment_grid;
use platoon_server::job::{cache_key, JobSpec, CODE_VERSION};
use platoon_server::net::{Client, NetServer};
use platoon_server::service::{JobStatus, Service, ServiceConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A unique, empty scratch directory for one test.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("platoon-server-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministically derives an arbitrary spec from two raw u64s,
/// covering every variant and full-width seeds.
fn arb_spec(shape: u64, seed: u64) -> JobSpec {
    let attacks = ["jamming", "replay", "sybil", "impersonation"];
    let attack = attacks[(shape >> 8) as usize % attacks.len()].to_string();
    match shape % 6 {
        0 => JobSpec::Arm {
            attack,
            mechanism: if shape & 1 == 0 {
                None
            } else {
                Some("keys".into())
            },
            quick: shape & 2 == 0,
            seed,
        },
        1 => JobSpec::Baseline {
            attack,
            quick: shape & 2 == 0,
            seed,
        },
        2 => JobSpec::Detection {
            attack,
            config: if shape & 1 == 0 { "default" } else { "strict" }.into(),
            quick: shape & 2 == 0,
            seed,
        },
        3 => JobSpec::Robustness {
            fault: "burst-loss".into(),
            attack,
            quick: shape & 2 == 0,
            seed,
        },
        4 => JobSpec::Perf {
            cell: format!("perf/cell/{}", shape >> 16),
            quick: shape & 2 == 0,
        },
        _ => JobSpec::Corridor {
            label: format!("corridor/prop/{}", shape >> 16),
            per: 2 + (shape >> 3) as usize % 12,
            platoons: 1 + (shape >> 7) as usize % 40,
            duration: 5.0 + (shape >> 11) as f64 % 30.0,
            horizon: if shape & 4 == 0 { None } else { Some(750.0) },
            seed,
        },
    }
}

proptest! {
    /// Any spec's canonical spelling survives encode → parse → encode
    /// byte-identically — the property the cache key and the wire protocol
    /// both stand on.
    #[test]
    fn any_spec_round_trips_byte_identically(shape in any::<u64>(), seed in any::<u64>()) {
        let spec = arb_spec(shape, seed);
        let text = spec.to_canonical_json();
        let back = JobSpec::parse(&text).expect("canonical spec parses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_canonical_json(), text);
    }

    /// Any (spec, seed) key round-trips through the on-disk store
    /// byte-identically: persist, drop, reload, and the document is the
    /// same bytes under the same key.
    #[test]
    fn any_key_round_trips_through_persist_and_load(shape in any::<u64>(), seed in any::<u64>()) {
        let spec = arb_spec(shape, seed);
        let key = cache_key(&spec);
        // A stand-in result document carrying the spec (documents are
        // opaque bytes to the cache; executing real jobs here would
        // swamp the 64 proptest cases).
        let document = format!("{{\"spec\": {}, \"seed\": \"{seed}\"}}", spec.to_canonical_json());
        let dir = scratch(&format!("prop-{key:016x}"));
        let config = CacheConfig { max_bytes: 1 << 20, dir: Some(dir.clone()) };
        {
            let mut cache = ResultCache::open(config.clone()).expect("open store");
            cache.insert(key, &document).expect("insert persists");
        }
        let mut reloaded = ResultCache::open(config).expect("reopen store");
        prop_assert_eq!(reloaded.stats().loaded, 1);
        let roundtrip = reloaded.get(key).expect("persisted key reloads");
        prop_assert_eq!(&*roundtrip, document.as_str());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// N concurrent clients submitting overlapping batches: every unique key
/// executes exactly once, and every client sees byte-identical documents
/// regardless of interleaving.
#[test]
fn overlapping_batches_execute_each_unique_key_once() {
    let service = Arc::new(
        Service::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        })
        .expect("service starts"),
    );
    let grid = experiment_grid("smoke", true).expect("smoke grid");
    let unique = grid.len() as u64;

    const CLIENTS: usize = 4;
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let service = Arc::clone(&service);
        let mut batch = grid.clone();
        // Overlapping, not identical: each client rotates the batch so
        // submissions race in different orders.
        let rotation = c % batch.len();
        batch.rotate_left(rotation);
        handles.push(std::thread::spawn(move || service.run_batch(batch)));
    }
    let mut documents: HashMap<String, String> = HashMap::new();
    for handle in handles {
        let results = handle.join().expect("client thread");
        assert_eq!(results.len(), grid.len());
        for result in results {
            assert_ne!(
                result.status,
                JobStatus::Failed,
                "{}: {:?}",
                result.label,
                result.error
            );
            let doc = result.document.expect("successful job has a document");
            match documents.get(&result.label) {
                Some(prior) => assert_eq!(
                    prior.as_str(),
                    &*doc,
                    "{}: documents must be byte-identical across clients",
                    result.label
                ),
                None => {
                    documents.insert(result.label, doc.to_string());
                }
            }
        }
    }

    let snapshot = service.snapshot();
    assert_eq!(
        snapshot.service.executed, unique,
        "each unique key must execute exactly once: {:?}",
        snapshot.service
    );
    assert_eq!(snapshot.service.failed, 0);
    assert_eq!(
        snapshot.service.submitted,
        unique * CLIENTS as u64,
        "every submission is accounted for"
    );
    assert_eq!(
        snapshot.service.hits + snapshot.service.coalesced,
        unique * (CLIENTS as u64 - 1),
        "all duplicate submissions were served without re-execution: {:?}",
        snapshot.service
    );
}

/// The TCP protocol round-trips: ping, a fresh execution, then a
/// byte-identical cache hit, then shutdown ends the accept loop.
#[test]
fn tcp_protocol_round_trips_and_hits_the_cache() {
    let service = Arc::new(
        Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .expect("service starts"),
    );
    let server = NetServer::spawn(Arc::clone(&service), "127.0.0.1:0").expect("server binds");
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr, Some(Duration::from_secs(5))).expect("connect");
    assert_eq!(client.ping().expect("ping"), CODE_VERSION);

    let specs = vec![JobSpec::Perf {
        cell: "perf/acc/none/dsrc".into(),
        quick: true,
    }];
    let first = client.submit(&specs).expect("first submit");
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].status, "done");
    let document = first[0].document.clone().expect("document");
    assert!(document.contains("\"perf\""), "{document}");

    // Same batch on a fresh connection: served from the cache, same bytes.
    let mut second_client =
        Client::connect(&addr, Some(Duration::from_secs(5))).expect("reconnect");
    let second = second_client.submit(&specs).expect("second submit");
    assert_eq!(second[0].status, "hit");
    assert_eq!(second[0].document.as_deref(), Some(document.as_str()));
    assert_eq!(second[0].key, first[0].key);

    let stats = second_client.stats().expect("stats");
    assert!(stats.contains("\"cache_entries\": 1"), "{stats}");

    second_client.shutdown().expect("shutdown");
    server.join(); // returns only if the accept loop really stopped
}

/// A budget timeout fails the job with queue-wait-aware diagnostics, the
/// failure is NOT cached, and a successful retry persists across service
/// restarts via the on-disk store.
#[test]
fn timeouts_are_not_cached_but_successes_survive_restarts() {
    let dir = scratch("restart");
    let cache = |max_bytes| CacheConfig {
        max_bytes,
        dir: Some(dir.clone()),
    };
    let spec = JobSpec::Perf {
        cell: "perf/cacc/none/dsrc".into(),
        quick: true,
    };

    // 1 ms budget: the cell cannot finish; the timeout must blame
    // execution time only.
    let strict = Service::start(ServiceConfig {
        workers: 1,
        job_budget: Some(Duration::from_millis(1)),
        engine_threads: 1,
        cache: cache(1 << 20),
    })
    .expect("strict service");
    let failed = strict.run_batch(vec![spec.clone()]);
    assert_eq!(failed[0].status, JobStatus::Failed);
    let reason = failed[0].error.clone().expect("timeout reason");
    assert!(reason.contains("wall-time budget"), "{reason}");
    assert!(reason.contains("queue wait excluded"), "{reason}");
    let snap = strict.snapshot();
    assert_eq!(snap.service.failed, 1);
    assert_eq!(snap.cache_entries, 0, "failures must never be cached");
    drop(strict);

    // Unbudgeted retry: a miss (nothing was cached), then an execution.
    let relaxed = Service::start(ServiceConfig {
        workers: 1,
        job_budget: None,
        engine_threads: 1,
        cache: cache(1 << 20),
    })
    .expect("relaxed service");
    let fresh = relaxed.run_batch(vec![spec.clone()]);
    assert_eq!(fresh[0].status, JobStatus::Executed);
    let document = fresh[0].document.clone().expect("document");
    assert!(
        fresh[0].timing.execution > Duration::ZERO,
        "execution time is measured"
    );
    drop(relaxed);

    // Restart: the persisted result is loaded and served byte-identically.
    let restarted = Service::start(ServiceConfig {
        workers: 1,
        job_budget: None,
        engine_threads: 1,
        cache: cache(1 << 20),
    })
    .expect("restarted service");
    assert_eq!(restarted.snapshot().cache.loaded, 1);
    let hit = restarted.run_batch(vec![spec]);
    assert_eq!(hit[0].status, JobStatus::Hit);
    assert_eq!(
        hit[0].document.as_deref(),
        Some(&*document),
        "cached results survive a restart byte-identically"
    );
    drop(restarted);
    std::fs::remove_dir_all(&dir).ok();
}
