//! The in-process job service: a bounded worker pool over a shared queue,
//! fronted by the [`ResultCache`] and deduplicated at enqueue time.
//!
//! A submitted job takes one of three paths, decided under one lock:
//!
//! * **cache hit** — the key is cached: the stored document is returned
//!   immediately, byte-identical to a fresh run;
//! * **coalesce** — an identical job is already queued or running: the
//!   submission attaches as a waiter and shares that single execution;
//! * **execute** — the job enters the queue; a worker claims it, runs it
//!   through the crash-isolated
//!   [`execute_job`](platoon_sim::exec::execute_job) core, and (on
//!   success) caches the document before fanning it out to every waiter.
//!
//! Queue wait is measured from enqueue to claim and reported separately
//! from execution time ([`JobTiming`]); the optional per-job wall-time
//! budget is charged against execution only, so a deep queue can never
//! time a healthy job out.

use crate::cache::{CacheConfig, CacheStats, ResultCache};
use crate::job::{cache_key, JobSpec};
use platoon_sim::exec::{self, JobOutcome, JobTiming};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service sizing knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Per-job wall-time budget (execution only); `None` = unbounded.
    pub job_budget: Option<Duration>,
    /// Engine threads corridor cells run with (results are invariant to
    /// this, so it is a throughput knob, not a cache-key input).
    pub engine_threads: usize,
    /// Result-cache sizing and persistence.
    pub cache: CacheConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: platoon_sim::harness::default_workers(),
            job_budget: None,
            engine_threads: 1,
            cache: CacheConfig::default(),
        }
    }
}

/// How one submitted job was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Served from the cache at enqueue time.
    Hit,
    /// Executed (or coalesced onto an execution) in this batch.
    Executed,
    /// The execution panicked or blew its budget.
    Failed,
}

impl JobStatus {
    /// Whether this result came straight from the cache.
    pub fn is_hit(&self) -> bool {
        matches!(self, JobStatus::Hit)
    }
}

/// One completed submission.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// Position of the job in its submitted batch.
    pub index: usize,
    /// The spec's display label.
    pub label: String,
    /// The content-address key.
    pub key: u64,
    /// How the result was obtained.
    pub status: JobStatus,
    /// The canonical result document (`None` on failure).
    pub document: Option<Arc<str>>,
    /// The failure reason (`None` on success).
    pub error: Option<String>,
    /// Queue-wait vs execution split (zero for cache hits).
    pub timing: JobTiming,
}

/// Submission/coalescing counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted (over every batch).
    pub submitted: u64,
    /// Submissions served from the cache at enqueue time.
    pub hits: u64,
    /// Submissions coalesced onto an already-in-flight execution.
    pub coalesced: u64,
    /// Unique executions completed successfully.
    pub executed: u64,
    /// Unique executions that failed.
    pub failed: u64,
}

/// A point-in-time view of the service and cache counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Submission/coalescing counters.
    pub service: ServiceStats,
    /// Cache hit/miss/churn counters.
    pub cache: CacheStats,
    /// Documents currently cached.
    pub cache_entries: usize,
    /// Document bytes currently cached.
    pub cache_bytes: usize,
}

/// One submission waiting on an execution.
struct Waiter {
    index: usize,
    tx: mpsc::Sender<JobResult>,
}

/// One queued-or-running unique job.
struct InFlight {
    spec: JobSpec,
    enqueued: Instant,
    waiters: Vec<Waiter>,
}

struct State {
    cache: ResultCache,
    /// Keys awaiting a worker, FIFO.
    queue: VecDeque<u64>,
    /// Every queued or running key, with its waiters.
    inflight: HashMap<u64, InFlight>,
    stats: ServiceStats,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
}

/// The running service: worker threads plus the shared state. Dropping it
/// drains the queue and joins the workers.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Opens the cache (loading any persisted entries) and starts the
    /// worker pool.
    pub fn start(config: ServiceConfig) -> std::io::Result<Service> {
        let cache = ResultCache::open(config.cache.clone())?;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                cache,
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                stats: ServiceStats::default(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let engine_threads = config.engine_threads;
                let budget = config.job_budget;
                std::thread::Builder::new()
                    .name(format!("platoon-server-worker-{i}"))
                    .spawn(move || worker_loop(&inner, engine_threads, budget))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(Service { inner, workers })
    }

    /// Submits a batch; results arrive on the returned channel in
    /// *completion* order, each tagged with its batch index. Cache hits are
    /// delivered before this returns.
    pub fn submit_batch(&self, specs: Vec<JobSpec>) -> mpsc::Receiver<JobResult> {
        let (tx, rx) = mpsc::channel();
        let mut state = self.inner.state.lock().expect("service state poisoned");
        let mut enqueued_any = false;
        for (index, spec) in specs.into_iter().enumerate() {
            let key = cache_key(&spec);
            state.stats.submitted += 1;
            if let Some(document) = state.cache.get(key) {
                state.stats.hits += 1;
                let _ = tx.send(JobResult {
                    index,
                    label: spec.label(),
                    key,
                    status: JobStatus::Hit,
                    document: Some(document),
                    error: None,
                    timing: JobTiming::default(),
                });
                continue;
            }
            let waiter = Waiter {
                index,
                tx: tx.clone(),
            };
            if let Some(inflight) = state.inflight.get_mut(&key) {
                inflight.waiters.push(waiter);
                state.stats.coalesced += 1;
                continue;
            }
            state.inflight.insert(
                key,
                InFlight {
                    spec,
                    enqueued: Instant::now(),
                    waiters: vec![waiter],
                },
            );
            state.queue.push_back(key);
            enqueued_any = true;
        }
        drop(state);
        if enqueued_any {
            self.inner.work_ready.notify_all();
        }
        rx
    }

    /// Submits a batch and blocks for every result, returned in submission
    /// order. (Results for jobs abandoned by a concurrent shutdown are
    /// simply absent.)
    pub fn run_batch(&self, specs: Vec<JobSpec>) -> Vec<JobResult> {
        let n = specs.len();
        let rx = self.submit_batch(specs);
        let mut results: Vec<JobResult> = rx.into_iter().take(n).collect();
        results.sort_by_key(|r| r.index);
        results
    }

    /// The current counters.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let state = self.inner.state.lock().expect("service state poisoned");
        ServiceSnapshot {
            service: state.stats,
            cache: state.cache.stats(),
            cache_entries: state.cache.len(),
            cache_bytes: state.cache.bytes(),
        }
    }

    /// Asks the workers to drain the queue and exit. Idempotent; actual
    /// joining happens on drop.
    pub fn shutdown(&self) {
        self.inner
            .state
            .lock()
            .expect("service state poisoned")
            .shutdown = true;
        self.inner.work_ready.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner, engine_threads: usize, budget: Option<Duration>) {
    loop {
        // Claim the next key, or exit once shutdown is set and the queue
        // has drained.
        let (key, spec, enqueued) = {
            let mut state = inner.state.lock().expect("service state poisoned");
            loop {
                if let Some(key) = state.queue.pop_front() {
                    let inflight = state
                        .inflight
                        .get(&key)
                        .expect("queued key is always in flight");
                    break (key, inflight.spec.clone(), inflight.enqueued);
                }
                if state.shutdown {
                    return;
                }
                state = inner
                    .work_ready
                    .wait(state)
                    .expect("service state poisoned");
            }
        };

        let queue_wait = enqueued.elapsed();
        let job_spec = spec.clone();
        let executed = exec::execute_job(
            Box::new(move |_seed| job_spec.execute(engine_threads)),
            0,
            budget,
            queue_wait,
        );

        let mut state = inner.state.lock().expect("service state poisoned");
        let inflight = state
            .inflight
            .remove(&key)
            .expect("finished key was in flight");
        match executed.outcome {
            JobOutcome::Ok(document) => {
                // A failed disk write degrades to memory-only for this
                // entry; the document is still served.
                let shared = state
                    .cache
                    .insert(key, &document)
                    .unwrap_or_else(|_| Arc::from(document.as_str()));
                state.stats.executed += 1;
                for waiter in inflight.waiters {
                    let _ = waiter.tx.send(JobResult {
                        index: waiter.index,
                        label: spec.label(),
                        key,
                        status: JobStatus::Executed,
                        document: Some(shared.clone()),
                        error: None,
                        timing: executed.timing,
                    });
                }
            }
            JobOutcome::Failed { reason } => {
                state.stats.failed += 1;
                for waiter in inflight.waiters {
                    let _ = waiter.tx.send(JobResult {
                        index: waiter.index,
                        label: spec.label(),
                        key,
                        status: JobStatus::Failed,
                        document: None,
                        error: Some(reason.clone()),
                        timing: executed.timing,
                    });
                }
            }
        }
    }
}
