//! The wire protocol: line-delimited JSON over localhost TCP.
//!
//! Requests are one compact JSON object per line:
//!
//! ```text
//! {"type": "ping"}
//! {"type": "stats"}
//! {"type": "submit", "jobs": [<spec>, <spec>, ...]}
//! {"type": "shutdown"}
//! ```
//!
//! A `submit` streams one `{"type": "job", ...}` event per result in
//! *completion* order (each tagged with its batch index); successful
//! events are followed by the result document **verbatim on its own
//! line**. Documents are compact canonical JSON, so one line always holds
//! one whole document — and shipping it verbatim (never re-encoded from a
//! parsed value) is what keeps cache hits byte-identical end to end. The
//! stream ends with a `{"type": "done", ...}` summary line.
//!
//! `shutdown` drains the service queue, stops the accept loop, and ends
//! the process-level `serve` command.

use crate::job::{JobSpec, CODE_VERSION};
use crate::service::{JobStatus, Service, ServiceSnapshot};
use platoon_sim::harness::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A listening protocol server wrapped around a [`Service`].
pub struct NetServer {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop on its own thread. Each connection is served by a
    /// dedicated thread; the loop exits after a `shutdown` request.
    pub fn spawn(service: Arc<Service>, addr: &str) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = std::thread::Builder::new()
            .name("platoon-server-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let service = Arc::clone(&service);
                    let stop = Arc::clone(&stop);
                    let _ = std::thread::Builder::new()
                        .name("platoon-server-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &service, &stop, addr);
                        });
                }
            })?;
        Ok(NetServer {
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (i.e. a client sent `shutdown`).
    pub fn join(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let shutdown = handle_request(&line, service, &mut writer)?;
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            service.shutdown();
            // The accept loop is blocked in `incoming()`; poke it awake so
            // it observes the stop flag and exits.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
    Ok(())
}

/// Serves one request line; returns whether it was a shutdown.
fn handle_request(line: &str, service: &Service, out: &mut TcpStream) -> std::io::Result<bool> {
    let parsed = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            writeln!(out, "{}", error_line(&format!("bad request JSON: {e}")))?;
            return Ok(false);
        }
    };
    let kind = match parsed.get("type") {
        Some(Value::Str(s)) => s.clone(),
        _ => {
            writeln!(out, "{}", error_line("request needs a \"type\" field"))?;
            return Ok(false);
        }
    };
    match kind.as_str() {
        "ping" => {
            let mut w = json::Writer::compact();
            w.obj(|w| {
                w.field_str("type", "pong");
                w.field_str("code_version", CODE_VERSION);
            });
            writeln!(out, "{}", w.finish())?;
            Ok(false)
        }
        "stats" => {
            writeln!(out, "{}", stats_line(&service.snapshot()))?;
            Ok(false)
        }
        "shutdown" => {
            let mut w = json::Writer::compact();
            w.obj(|w| w.field_str("type", "ok"));
            writeln!(out, "{}", w.finish())?;
            Ok(true)
        }
        "submit" => {
            let specs = match parse_jobs(&parsed) {
                Ok(specs) => specs,
                Err(e) => {
                    writeln!(out, "{}", error_line(&e))?;
                    return Ok(false);
                }
            };
            let n = specs.len();
            let rx = service.submit_batch(specs);
            let (mut hits, mut executed, mut failed) = (0u64, 0u64, 0u64);
            for result in rx.into_iter().take(n) {
                match result.status {
                    JobStatus::Hit => hits += 1,
                    JobStatus::Executed => executed += 1,
                    JobStatus::Failed => failed += 1,
                }
                let mut w = json::Writer::compact();
                w.obj(|w| {
                    w.field_str("type", "job");
                    w.field_u64("index", result.index as u64);
                    w.field_str("label", &result.label);
                    w.field_str("key", &format!("{:016x}", result.key));
                    w.field_str(
                        "status",
                        match result.status {
                            JobStatus::Hit => "hit",
                            JobStatus::Executed => "done",
                            JobStatus::Failed => "failed",
                        },
                    );
                    if let Some(error) = &result.error {
                        w.field_str("error", error);
                    }
                    w.field_f64("queue_ms", result.timing.queue_wait.as_secs_f64() * 1e3);
                    w.field_f64("exec_ms", result.timing.execution.as_secs_f64() * 1e3);
                });
                writeln!(out, "{}", w.finish())?;
                if let Some(document) = &result.document {
                    writeln!(out, "{document}")?;
                }
                // Stream each result as it completes.
                out.flush()?;
            }
            let mut w = json::Writer::compact();
            w.obj(|w| {
                w.field_str("type", "done");
                w.field_u64("jobs", n as u64);
                w.field_u64("hits", hits);
                w.field_u64("executed", executed);
                w.field_u64("failed", failed);
            });
            writeln!(out, "{}", w.finish())?;
            Ok(false)
        }
        other => {
            writeln!(
                out,
                "{}",
                error_line(&format!("unknown request type {other:?}"))
            )?;
            Ok(false)
        }
    }
}

fn parse_jobs(request: &Value) -> Result<Vec<JobSpec>, String> {
    let jobs = match request.get("jobs") {
        Some(Value::Arr(jobs)) => jobs,
        _ => return Err("submit needs a \"jobs\" array".into()),
    };
    jobs.iter()
        .enumerate()
        .map(|(i, v)| JobSpec::from_json(v).map_err(|e| format!("jobs[{i}]: {e}")))
        .collect()
}

fn error_line(message: &str) -> String {
    let mut w = json::Writer::compact();
    w.obj(|w| {
        w.field_str("type", "error");
        w.field_str("error", message);
    });
    w.finish()
}

/// The canonical stats document (one line): also the CI artifact body.
pub fn stats_line(snapshot: &ServiceSnapshot) -> String {
    let mut w = json::Writer::compact();
    w.obj(|w| {
        w.field_str("type", "stats");
        w.field_str("code_version", CODE_VERSION);
        w.field_u64("submitted", snapshot.service.submitted);
        w.field_u64("hits", snapshot.service.hits);
        w.field_u64("coalesced", snapshot.service.coalesced);
        w.field_u64("executed", snapshot.service.executed);
        w.field_u64("failed", snapshot.service.failed);
        w.field_u64("cache_hits", snapshot.cache.hits);
        w.field_u64("cache_misses", snapshot.cache.misses);
        w.field_u64("cache_insertions", snapshot.cache.insertions);
        w.field_u64("cache_evictions", snapshot.cache.evictions);
        w.field_u64("cache_loaded", snapshot.cache.loaded);
        w.field_u64("cache_entries", snapshot.cache_entries as u64);
        w.field_u64("cache_bytes", snapshot.cache_bytes as u64);
    });
    w.finish()
}

/// One job result as seen by a protocol client. The document is the
/// verbatim line the server streamed — bytes preserved, never re-encoded.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientJobResult {
    /// Position in the submitted batch.
    pub index: usize,
    /// The spec's display label.
    pub label: String,
    /// The content-address key, as 16 hex digits.
    pub key: String,
    /// `hit`, `done`, or `failed`.
    pub status: String,
    /// The result document (`None` on failure).
    pub document: Option<String>,
    /// The failure reason (`None` on success).
    pub error: Option<String>,
}

impl ClientJobResult {
    /// Whether this result was served from the cache.
    pub fn is_hit(&self) -> bool {
        self.status == "hit"
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`, retrying for up to `retry_for` (covering the
    /// serve-then-submit race in scripts that background the server).
    pub fn connect(addr: &str, retry_for: Option<Duration>) -> std::io::Result<Client> {
        let deadline = retry_for.map(|d| Instant::now() + d);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Client {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) => match deadline {
                    Some(deadline) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    _ => return Err(e),
                },
            }
        }
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Round-trips a ping, returning the server's code version.
    pub fn ping(&mut self) -> Result<String, String> {
        self.send("{\"type\": \"ping\"}")?;
        let reply = self.recv()?;
        let v = json::parse(&reply)?;
        match (v.get("type"), v.get("code_version")) {
            (Some(Value::Str(t)), Some(Value::Str(cv))) if t == "pong" => Ok(cv.clone()),
            _ => Err(format!("unexpected ping reply: {reply}")),
        }
    }

    /// Fetches the stats document line.
    pub fn stats(&mut self) -> Result<String, String> {
        self.send("{\"type\": \"stats\"}")?;
        let reply = self.recv()?;
        match json::parse(&reply)?.get("type") {
            Some(Value::Str(t)) if t == "stats" => Ok(reply),
            _ => Err(format!("unexpected stats reply: {reply}")),
        }
    }

    /// Submits a batch and collects every result, returned in submission
    /// order.
    pub fn submit(&mut self, specs: &[JobSpec]) -> Result<Vec<ClientJobResult>, String> {
        // The request line only has to parse, not be canonical — build it
        // directly around the specs' canonical spellings.
        let mut line = String::from("{\"type\": \"submit\", \"jobs\": [");
        for (i, spec) in specs.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            line.push_str(&spec.to_canonical_json());
        }
        line.push_str("]}");
        self.send(&line)?;

        let mut results = Vec::with_capacity(specs.len());
        loop {
            let event_line = self.recv()?;
            let event = json::parse(&event_line)?;
            let kind = match event.get("type") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err(format!("untyped event: {event_line}")),
            };
            match kind.as_str() {
                "job" => {
                    let status = match event.get("status") {
                        Some(Value::Str(s)) => s.clone(),
                        _ => return Err(format!("job event without status: {event_line}")),
                    };
                    let document = if status == "failed" {
                        None
                    } else {
                        Some(self.recv()?)
                    };
                    results.push(ClientJobResult {
                        index: event
                            .get("index")
                            .and_then(Value::as_f64)
                            .ok_or("job event without index")?
                            as usize,
                        label: match event.get("label") {
                            Some(Value::Str(s)) => s.clone(),
                            _ => String::new(),
                        },
                        key: match event.get("key") {
                            Some(Value::Str(s)) => s.clone(),
                            _ => String::new(),
                        },
                        status,
                        document,
                        error: match event.get("error") {
                            Some(Value::Str(s)) => Some(s.clone()),
                            _ => None,
                        },
                    });
                }
                "done" => break,
                "error" => {
                    return Err(match event.get("error") {
                        Some(Value::Str(e)) => e.clone(),
                        _ => event_line,
                    })
                }
                other => return Err(format!("unexpected event type {other:?}")),
            }
        }
        results.sort_by_key(|r| r.index);
        Ok(results)
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send("{\"type\": \"shutdown\"}")?;
        let reply = self.recv()?;
        match json::parse(&reply)?.get("type") {
            Some(Value::Str(t)) if t == "ok" => Ok(()),
            _ => Err(format!("unexpected shutdown reply: {reply}")),
        }
    }
}
