//! The job vocabulary: what the service can run, how a job is spelled in
//! canonical JSON, and how it is keyed in the result cache.
//!
//! A [`JobSpec`] names one experiment arm from `platoon-core` — a Table
//! II/III arm, a Table IV detection run, a robustness cell, a perf-grid
//! cell, or a corridor cell. The spec is the *complete* input of the run:
//! the workspace's simulations are deterministic given (spec, seed), so a
//! spec's canonical JSON plus the running code version is a sound
//! content address for the result ([`cache_key`]).
//!
//! Seeds are encoded as **decimal strings**, not JSON numbers: the
//! workspace's minimal parser reads numbers as `f64`, and label-derived
//! corridor seeds use all 64 bits — well past the 2^53 range where `f64`
//! stays exact. Strings round-trip losslessly.

use platoon_attacks::prelude::AttackParams;
use platoon_core::experiments::common::Effort;
use platoon_sim::harness::json::{self, Value};
use platoon_sim::harness::write_run_summary;
use platoon_sim::prelude::DetectionSummary;

/// The version string folded into every cache key. Bump the crate version
/// (or change this scheme) and every previously cached result misses —
/// results are only reusable across runs of the *same* code.
pub const CODE_VERSION: &str = concat!("platoon-server/", env!("CARGO_PKG_VERSION"));

/// 64-bit FNV-1a over a byte string — the cache's content-address hash
/// (the same family the harness uses for label-derived seeds).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One runnable unit of work: an experiment arm by name.
///
/// Every variant carries everything the run depends on and nothing it does
/// not: harness worker counts and corridor engine-thread counts are
/// deliberately absent because results are invariant to both (so a result
/// computed at any width answers every future width).
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// A Table II/III experiment arm: one attack against the canonical
    /// platoon, optionally defended by a mechanism variant.
    Arm {
        /// Attack machine name (`platoon-attacks` registry).
        attack: String,
        /// Mechanism variant, `None` = undefended.
        mechanism: Option<String>,
        /// Quick vs full effort.
        quick: bool,
        /// Scenario seed.
        seed: u64,
    },
    /// A Table II clean-baseline arm paired with an attack row.
    Baseline {
        /// Attack machine name the baseline pairs with.
        attack: String,
        /// Quick vs full effort.
        quick: bool,
        /// Scenario seed.
        seed: u64,
    },
    /// A Table IV detection-quality arm.
    Detection {
        /// Attack machine name (or `benign`).
        attack: String,
        /// Detector configuration (`default` / `strict`).
        config: String,
        /// Quick vs full effort.
        quick: bool,
        /// Scenario seed.
        seed: u64,
    },
    /// A robustness cell: detection quality under a benign fault.
    Robustness {
        /// Fault arm name (`none` for the clean control).
        fault: String,
        /// Attack arm name (`benign` or `impersonation`).
        attack: String,
        /// Quick vs full effort.
        quick: bool,
        /// Scenario seed.
        seed: u64,
    },
    /// One perf-grid cell — the deterministic counter projection only
    /// (wall times are machine noise and have no place in a cache).
    Perf {
        /// Grid cell label (e.g. `perf/cacc/pki/dsrc`).
        cell: String,
        /// Quick vs full effort.
        quick: bool,
    },
    /// One adversarial-campaign cell: a tuned attack candidate scored
    /// against the default detection pipeline (stealth vs damage). The
    /// campaign driver submits thousands of these per search, so this is
    /// the variant the content-addressed cache earns its keep on:
    /// grid-pass cells resurface verbatim across generations and across
    /// re-runs of the same campaign seed.
    Campaign {
        /// The candidate: attack name plus its snapped knob values.
        params: AttackParams,
        /// Quick vs full effort.
        quick: bool,
        /// Scenario seed.
        seed: u64,
    },
    /// One dataset export cell: a (attack arm, seed) run tapped for
    /// labeled per-beacon feature rows. The cached result carries the
    /// cell's row/positive counts and the FNV-1a digest of its
    /// single-cell columnar shard — enough for a driver to dedup export
    /// work and verify a shard it already holds without re-running the
    /// simulation.
    Dataset {
        /// Attack arm name (or `benign`).
        attack: String,
        /// Quick vs full effort.
        quick: bool,
        /// Scenario seed.
        seed: u64,
    },
    /// One regime-experiment cell: a (detector profile, attack) run over
    /// the canonical piecewise driving-regime plan, scored whole-run and
    /// per-phase.
    Regime {
        /// Detector profile name (`cruise` / `regime-aware`).
        profile: String,
        /// Attack arm name (or `benign`).
        attack: String,
        /// Quick vs full effort.
        quick: bool,
        /// Scenario seed.
        seed: u64,
    },
    /// One corridor-grid cell: a multi-platoon corridor world.
    Corridor {
        /// Cell label (e.g. `corridor/indexed/6x8`).
        label: String,
        /// Trucks per platoon.
        per: usize,
        /// Platoon count.
        platoons: usize,
        /// Run duration in seconds.
        duration: f64,
        /// Radio horizon in metres; `None` = all-pairs.
        horizon: Option<f64>,
        /// Scenario seed.
        seed: u64,
    },
}

impl JobSpec {
    /// A human-readable label for progress output and batch documents.
    /// Unique within every grid [`crate::grids`] builds.
    pub fn label(&self) -> String {
        match self {
            JobSpec::Arm {
                attack, mechanism, ..
            } => format!(
                "arm/{attack}/{}",
                mechanism.as_deref().unwrap_or("undefended")
            ),
            JobSpec::Baseline { attack, .. } => format!("baseline/{attack}"),
            JobSpec::Detection {
                attack,
                config,
                seed,
                ..
            } => format!("detect/{attack}/{config}/{seed}"),
            JobSpec::Robustness {
                fault,
                attack,
                seed,
                ..
            } => format!("robust/{fault}/{attack}/{seed}"),
            JobSpec::Perf { cell, .. } => cell.clone(),
            JobSpec::Campaign { params, seed, .. } => format!(
                "campaign/{}/{:08x}/{seed}",
                params.attack(),
                fnv1a(params.canonical_json().as_bytes()) as u32
            ),
            JobSpec::Dataset { attack, seed, .. } => format!("dataset/{attack}/{seed}"),
            JobSpec::Regime {
                profile,
                attack,
                seed,
                ..
            } => format!("regime/{profile}/{attack}/{seed}"),
            JobSpec::Corridor { label, .. } => label.clone(),
        }
    }

    /// The canonical compact-JSON spelling of the spec: fixed field order,
    /// seeds as decimal strings. This is the protocol wire form *and* the
    /// cache-key input — the two must never diverge, so there is only one.
    pub fn to_canonical_json(&self) -> String {
        let mut w = json::Writer::compact();
        w.obj(|w| match self {
            JobSpec::Arm {
                attack,
                mechanism,
                quick,
                seed,
            } => {
                w.field_str("kind", "arm");
                w.field_str("attack", attack);
                if let Some(mechanism) = mechanism {
                    w.field_str("mechanism", mechanism);
                }
                w.field_bool("quick", *quick);
                w.field_str("seed", &seed.to_string());
            }
            JobSpec::Baseline {
                attack,
                quick,
                seed,
            } => {
                w.field_str("kind", "baseline");
                w.field_str("attack", attack);
                w.field_bool("quick", *quick);
                w.field_str("seed", &seed.to_string());
            }
            JobSpec::Detection {
                attack,
                config,
                quick,
                seed,
            } => {
                w.field_str("kind", "detection");
                w.field_str("attack", attack);
                w.field_str("config", config);
                w.field_bool("quick", *quick);
                w.field_str("seed", &seed.to_string());
            }
            JobSpec::Robustness {
                fault,
                attack,
                quick,
                seed,
            } => {
                w.field_str("kind", "robustness");
                w.field_str("fault", fault);
                w.field_str("attack", attack);
                w.field_bool("quick", *quick);
                w.field_str("seed", &seed.to_string());
            }
            JobSpec::Perf { cell, quick } => {
                w.field_str("kind", "perf");
                w.field_str("cell", cell);
                w.field_bool("quick", *quick);
            }
            JobSpec::Campaign {
                params,
                quick,
                seed,
            } => {
                w.field_str("kind", "campaign");
                w.field_raw("candidate", &params.canonical_json());
                w.field_bool("quick", *quick);
                w.field_str("seed", &seed.to_string());
            }
            JobSpec::Dataset {
                attack,
                quick,
                seed,
            } => {
                w.field_str("kind", "dataset");
                w.field_str("attack", attack);
                w.field_bool("quick", *quick);
                w.field_str("seed", &seed.to_string());
            }
            JobSpec::Regime {
                profile,
                attack,
                quick,
                seed,
            } => {
                w.field_str("kind", "regime");
                w.field_str("profile", profile);
                w.field_str("attack", attack);
                w.field_bool("quick", *quick);
                w.field_str("seed", &seed.to_string());
            }
            JobSpec::Corridor {
                label,
                per,
                platoons,
                duration,
                horizon,
                seed,
            } => {
                w.field_str("kind", "corridor");
                w.field_str("label", label);
                w.field_u64("per", *per as u64);
                w.field_u64("platoons", *platoons as u64);
                w.field_f64("duration", *duration);
                if let Some(h) = horizon {
                    w.field_f64("horizon", *h);
                }
                w.field_str("seed", &seed.to_string());
            }
        });
        w.finish()
    }

    /// Decodes a spec from a parsed JSON value (the inverse of
    /// [`JobSpec::to_canonical_json`]).
    pub fn from_json(v: &Value) -> Result<JobSpec, String> {
        let kind = str_field(v, "kind")?;
        match kind.as_str() {
            "arm" => Ok(JobSpec::Arm {
                attack: str_field(v, "attack")?,
                mechanism: opt_str_field(v, "mechanism"),
                quick: bool_field(v, "quick")?,
                seed: seed_field(v, "seed")?,
            }),
            "baseline" => Ok(JobSpec::Baseline {
                attack: str_field(v, "attack")?,
                quick: bool_field(v, "quick")?,
                seed: seed_field(v, "seed")?,
            }),
            "detection" => Ok(JobSpec::Detection {
                attack: str_field(v, "attack")?,
                config: str_field(v, "config")?,
                quick: bool_field(v, "quick")?,
                seed: seed_field(v, "seed")?,
            }),
            "robustness" => Ok(JobSpec::Robustness {
                fault: str_field(v, "fault")?,
                attack: str_field(v, "attack")?,
                quick: bool_field(v, "quick")?,
                seed: seed_field(v, "seed")?,
            }),
            "perf" => Ok(JobSpec::Perf {
                cell: str_field(v, "cell")?,
                quick: bool_field(v, "quick")?,
            }),
            "campaign" => Ok(JobSpec::Campaign {
                params: AttackParams::from_json(
                    v.get("candidate")
                        .ok_or("campaign spec needs a \"candidate\" object")?,
                )?,
                quick: bool_field(v, "quick")?,
                seed: seed_field(v, "seed")?,
            }),
            "dataset" => Ok(JobSpec::Dataset {
                attack: str_field(v, "attack")?,
                quick: bool_field(v, "quick")?,
                seed: seed_field(v, "seed")?,
            }),
            "regime" => Ok(JobSpec::Regime {
                profile: str_field(v, "profile")?,
                attack: str_field(v, "attack")?,
                quick: bool_field(v, "quick")?,
                seed: seed_field(v, "seed")?,
            }),
            "corridor" => Ok(JobSpec::Corridor {
                label: str_field(v, "label")?,
                per: usize_field(v, "per")?,
                platoons: usize_field(v, "platoons")?,
                duration: f64_field(v, "duration")?,
                horizon: v.get("horizon").and_then(Value::as_f64),
                seed: seed_field(v, "seed")?,
            }),
            other => Err(format!("unknown job kind {other:?}")),
        }
    }

    /// Parses a spec from its canonical-JSON text.
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&json::parse(text)?)
    }

    /// Runs the job to its canonical compact result document.
    ///
    /// This is the job body the service hands to
    /// [`execute_job`](platoon_sim::exec::execute_job) — it runs under
    /// `catch_unwind`, so unknown attack/mechanism/cell names (which panic
    /// in `platoon-core`) degrade to a failed job, never a dead worker.
    /// Documents carry only deterministic fields (no wall times), so any
    /// two executions of the same spec are byte-identical — the property
    /// the whole cache rests on.
    pub fn execute(&self, engine_threads: usize) -> String {
        use platoon_core::experiments::{campaign, corridor, robustness, table2, table4};

        let mut w = json::Writer::compact();
        match self {
            JobSpec::Arm {
                attack,
                mechanism,
                quick,
                seed,
            } => {
                let out = platoon_core::experiments::common::arm_outcome(
                    attack,
                    mechanism.as_deref(),
                    Effort::new(*quick),
                    *seed,
                );
                w.obj(|w| {
                    w.field_str("label", &self.label());
                    w.field_str("seed", &seed.to_string());
                    w.field_f64("impact", out.impact);
                    w.field_obj("summary", |w| write_run_summary(w, &out.summary));
                });
            }
            JobSpec::Baseline {
                attack,
                quick,
                seed,
            } => {
                let out = table2::baseline_outcome(attack, Effort::new(*quick), *seed);
                w.obj(|w| {
                    w.field_str("label", &self.label());
                    w.field_str("seed", &seed.to_string());
                    w.field_f64("impact", out.impact);
                    w.field_obj("summary", |w| write_run_summary(w, &out.summary));
                });
            }
            JobSpec::Detection {
                attack,
                config,
                quick,
                seed,
            } => {
                let d = table4::detection_arm(attack, config, Effort::new(*quick), *seed);
                w.obj(|w| {
                    w.field_str("label", &self.label());
                    w.field_str("seed", &seed.to_string());
                    w.field_obj("detection", |w| write_detection(w, &d));
                });
            }
            JobSpec::Robustness {
                fault,
                attack,
                quick,
                seed,
            } => {
                let cell = robustness::robustness_arm(fault, attack, Effort::new(*quick), *seed);
                w.obj(|w| {
                    w.field_str("label", &self.label());
                    w.field_str("seed", &seed.to_string());
                    w.field_obj("detection", |w| write_detection(w, &cell.detection));
                    w.field_obj("summary", |w| write_run_summary(w, &cell.summary));
                });
            }
            JobSpec::Perf { cell, quick } => {
                let (seed, counters) = platoon_core::perf::run_cell(cell, *quick)
                    .unwrap_or_else(|| panic!("unknown perf cell {cell:?}"));
                w.obj(|w| {
                    w.field_str("label", cell);
                    w.field_str("seed", &seed.to_string());
                    w.field_obj("perf", |w| counters.write_canonical(w));
                });
            }
            JobSpec::Campaign {
                params,
                quick,
                seed,
            } => {
                let out = campaign::evaluate_candidate(params, *quick, *seed);
                // The campaign document is already canonical compact JSON;
                // return it verbatim so the in-process evaluation path and
                // a cached server result can never diverge by a byte.
                return campaign::outcome_document(params, *quick, *seed, &out);
            }
            JobSpec::Dataset {
                attack,
                quick,
                seed,
            } => {
                let label = self.label();
                let cell = platoon_dataset::factory::export_cell(
                    attack,
                    Effort::new(*quick),
                    *seed,
                    &label,
                );
                let shard = platoon_dataset::columnar::Shard { cells: vec![cell] };
                w.obj(|w| {
                    w.field_str("label", &label);
                    w.field_str("seed", &seed.to_string());
                    w.field_u64("rows", shard.rows() as u64);
                    w.field_u64("positives", shard.positives());
                    w.field_str("digest", &format!("{:016x}", shard.digest()));
                });
            }
            JobSpec::Regime {
                profile,
                attack,
                quick,
                seed,
            } => {
                let row = platoon_core::experiments::regimes::regime_arm(
                    profile,
                    attack,
                    Effort::new(*quick),
                    *seed,
                );
                w.obj(|w| {
                    w.field_str("label", &self.label());
                    w.field_str("seed", &seed.to_string());
                    platoon_core::experiments::regimes::write_row(w, &row);
                });
            }
            JobSpec::Corridor {
                label,
                per,
                platoons,
                duration,
                horizon,
                seed,
            } => {
                let run = corridor::corridor_arm(
                    label,
                    *per,
                    *platoons,
                    *duration,
                    horizon.unwrap_or(f64::INFINITY),
                    engine_threads,
                    *seed,
                );
                w.obj(|w| {
                    w.field_str("label", label);
                    w.field_str("seed", &seed.to_string());
                    w.field_u64("vehicles", run.vehicles as u64);
                    w.field_u64("pairs_considered", run.pairs_considered);
                    w.field_obj("summary", |w| write_run_summary(w, &run.summary));
                });
            }
        }
        w.finish()
    }
}

/// The content address of a spec's result: FNV-1a over the canonical JSON
/// of `{code_version, spec}`. Two specs collide only if their canonical
/// spellings hash together — the quick-grid sanity test pins distinctness
/// over every grid the service ships.
pub fn cache_key(spec: &JobSpec) -> u64 {
    let mut w = json::Writer::compact();
    w.obj(|w| {
        w.field_str("code_version", CODE_VERSION);
        w.field_raw("spec", &spec.to_canonical_json());
    });
    fnv1a(w.finish().as_bytes())
}

/// Canonical rendering of a [`DetectionSummary`] (shared by the detection
/// and robustness result documents).
fn write_detection(w: &mut json::Writer, d: &DetectionSummary) {
    w.field_u64("alerts", d.alerts as u64);
    w.field_u64("true_positives", d.true_positives as u64);
    w.field_u64("false_positives", d.false_positives as u64);
    w.field_bool("detected", d.detected);
    w.field_f64("first_detection_latency", d.first_detection_latency);
    w.field_f64("attribution_accuracy", d.attribution_accuracy);
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        _ => Err(format!("job spec needs a string {key:?} field")),
    }
}

fn opt_str_field(v: &Value, key: &str) -> Option<String> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("job spec needs a boolean {key:?} field")),
    }
}

/// Seeds travel as decimal strings (see the module docs); accept a plain
/// number too for hand-written requests with small seeds.
fn seed_field(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Value::Str(s)) => s
            .parse::<u64>()
            .map_err(|e| format!("{key:?} is not a decimal u64: {e}")),
        Some(Value::Num(x)) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
            Ok(*x as u64)
        }
        _ => Err(format!("job spec needs a seed string in {key:?}")),
    }
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    match v.get(key).and_then(Value::as_f64) {
        Some(x) if x >= 0.0 && x.fract() == 0.0 => Ok(x as usize),
        _ => Err(format!("job spec needs an integer {key:?} field")),
    }
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("job spec needs a number {key:?} field"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_specs() -> Vec<JobSpec> {
        vec![
            JobSpec::Arm {
                attack: "jamming".into(),
                mechanism: None,
                quick: true,
                seed: 2021,
            },
            JobSpec::Arm {
                attack: "replay".into(),
                mechanism: Some("keys".into()),
                quick: true,
                seed: 2021,
            },
            JobSpec::Baseline {
                attack: "jamming".into(),
                quick: false,
                seed: 7,
            },
            JobSpec::Detection {
                attack: "sybil".into(),
                config: "strict".into(),
                quick: true,
                seed: 2023,
            },
            JobSpec::Robustness {
                fault: "burst-loss".into(),
                attack: "benign".into(),
                quick: true,
                seed: 2022,
            },
            JobSpec::Perf {
                cell: "perf/cacc/pki/dsrc".into(),
                quick: true,
            },
            JobSpec::Campaign {
                params: AttackParams::defaults("jamming").unwrap(),
                quick: true,
                seed: 2021,
            },
            JobSpec::Campaign {
                params: AttackParams::from_values("insider-fdi", &[0.5, -2.0, 1.0, 3.0]).unwrap(),
                quick: true,
                seed: 2021,
            },
            JobSpec::Dataset {
                attack: "insider-fdi".into(),
                quick: true,
                seed: 2021,
            },
            JobSpec::Regime {
                profile: "regime-aware".into(),
                attack: "benign".into(),
                quick: true,
                seed: 2021,
            },
            JobSpec::Corridor {
                label: "corridor/indexed/6x8".into(),
                per: 8,
                platoons: 6,
                duration: 20.0,
                horizon: Some(750.0),
                seed: 0xdead_beef_cafe_f00d, // full 64 bits must survive
            },
            JobSpec::Corridor {
                label: "corridor/allpairs/6x8".into(),
                per: 8,
                platoons: 6,
                duration: 20.0,
                horizon: None,
                seed: u64::MAX,
            },
        ]
    }

    #[test]
    fn specs_round_trip_byte_identically() {
        for spec in sample_specs() {
            let text = spec.to_canonical_json();
            let back = JobSpec::parse(&text).expect("spec parses");
            assert_eq!(back, spec, "decode inverts encode: {text}");
            assert_eq!(back.to_canonical_json(), text, "re-encode is stable");
        }
    }

    #[test]
    fn sample_keys_are_distinct_and_version_scoped() {
        let keys: Vec<u64> = sample_specs().iter().map(cache_key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "sample specs must not collide");
        // The key covers the code version: a spec alone hashes differently.
        let spec = &sample_specs()[0];
        assert_ne!(
            cache_key(spec),
            fnv1a(spec.to_canonical_json().as_bytes()),
            "cache keys must be scoped to the code version"
        );
    }

    #[test]
    fn quick_and_full_effort_key_differently() {
        let quick = JobSpec::Perf {
            cell: "perf/acc/none/dsrc".into(),
            quick: true,
        };
        let full = JobSpec::Perf {
            cell: "perf/acc/none/dsrc".into(),
            quick: false,
        };
        assert_ne!(cache_key(&quick), cache_key(&full));
    }
}
