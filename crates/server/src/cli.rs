//! The `serve` and `submit` subcommands (wired into the root
//! `platoon-security` binary and the bench `report` binary).
//!
//! ```text
//! serve  [--addr A] [--workers N] [--threads N] [--cache-dir DIR]
//!        [--cache-bytes N] [--job-budget-secs S]
//! submit --experiment NAME [--quick] [--addr A | --in-process] [--out DIR]
//!        [--check-golden PATH] [--assert-all-hits] [--shutdown]
//!        [--retry-secs S] [--workers N] [--threads N]
//!        [--cache-dir DIR] [--cache-bytes N]
//! ```
//!
//! `submit` writes two files into `--out`:
//!
//! * `SERVICE_<experiment>_<label>.json` — the batch document: one entry
//!   per job with its spec, key, and verbatim result document. Hit/miss
//!   status is deliberately **excluded**, so the file is byte-identical
//!   whether results came from the cache or fresh executions — that is
//!   the golden-snapshot unit.
//! * `SERVICE_STATS_<experiment>_<label>.json` — the cache/service
//!   counters plus this batch's hit/executed/failed split (the CI
//!   artifact; machine-state-dependent by design).

use crate::grids::{experiment_grid, EXPERIMENTS};
use crate::job::{JobSpec, CODE_VERSION};
use crate::net::{stats_line, Client, NetServer};
use crate::service::{JobStatus, Service, ServiceConfig};
use platoon_sim::harness::{golden, json};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The default service endpoint.
pub const DEFAULT_ADDR: &str = "127.0.0.1:9471";

/// One job's contribution to the batch document.
struct Row {
    label: String,
    key: String,
    spec: String,
    status: String,
    document: Option<String>,
    error: Option<String>,
}

/// Renders the deterministic batch document (see the module docs).
fn batch_document(experiment: &str, effort: &str, rows: &[Row]) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_str("code_version", CODE_VERSION);
        w.field_str("experiment", experiment);
        w.field_str("effort", effort);
        w.field_arr("jobs", |w| {
            for row in rows {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("label", &row.label);
                        w.field_str("key", &row.key);
                        w.field_raw("spec", &row.spec);
                        match (&row.document, &row.error) {
                            (Some(document), _) => w.field_raw("document", document),
                            (None, Some(error)) => w.field_str("error", error),
                            (None, None) => w.field_str("error", "missing result"),
                        }
                    })
                });
            }
        });
    });
    w.finish()
}

/// Renders the stats document around the server's stats line.
fn stats_document(experiment: &str, effort: &str, stats: &str, rows: &[Row]) -> String {
    let hits = rows.iter().filter(|r| r.status == "hit").count() as u64;
    let executed = rows.iter().filter(|r| r.status == "done").count() as u64;
    let failed = rows.iter().filter(|r| r.status == "failed").count() as u64;
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_str("experiment", experiment);
        w.field_str("effort", effort);
        w.field_obj("batch", |w| {
            w.field_u64("jobs", rows.len() as u64);
            w.field_u64("hits", hits);
            w.field_u64("executed", executed);
            w.field_u64("failed", failed);
            w.field_bool("all_hits", hits == rows.len() as u64);
        });
        w.field_raw("service", stats);
    });
    w.finish()
}

/// Entry point for the `serve` subcommand. Blocks until a client sends a
/// `shutdown` request. Returns the process exit code.
pub fn serve_cli_main(args: &[String]) -> i32 {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut config = ServiceConfig::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--addr" => addr = value("--addr")?,
                "--workers" => {
                    config.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--threads" => {
                    config.engine_threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--cache-dir" => config.cache.dir = Some(PathBuf::from(value("--cache-dir")?)),
                "--cache-bytes" => {
                    config.cache.max_bytes = value("--cache-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-bytes: {e}"))?
                }
                "--job-budget-secs" => {
                    let secs: f64 = value("--job-budget-secs")?
                        .parse()
                        .map_err(|e| format!("--job-budget-secs: {e}"))?;
                    config.job_budget = Some(Duration::from_secs_f64(secs));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: serve [--addr A] [--workers N] [--threads N] [--cache-dir DIR]\n\
                         \x20            [--cache-bytes N] [--job-budget-secs S]\n\
                         \x20 --addr A            listen address (default: {DEFAULT_ADDR}; use :0 for ephemeral)\n\
                         \x20 --workers N         job worker threads (default: available parallelism)\n\
                         \x20 --threads N         engine threads per corridor job (default: 1)\n\
                         \x20 --cache-dir DIR     persist cached results here (survive restarts)\n\
                         \x20 --cache-bytes N     cache byte budget before LRU eviction (default: 64 MiB)\n\
                         \x20 --job-budget-secs S per-job wall-time budget, execution time only"
                    );
                    return Err(String::new());
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    let service = match Service::start(config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("error: starting service: {e}");
            return 1;
        }
    };
    let loaded = service.snapshot().cache.loaded;
    let server = match NetServer::spawn(Arc::clone(&service), &addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            return 1;
        }
    };
    // Scripts parse this line for the (possibly ephemeral) port.
    println!("listening on {}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "{CODE_VERSION} serving on {} ({} cached result(s) loaded); send {{\"type\": \"shutdown\"}} to stop",
        server.addr(),
        loaded
    );
    server.join();
    eprintln!("server stopped");
    0
}

/// Entry point for the `submit` subcommand. Returns the process exit code.
pub fn submit_cli_main(args: &[String]) -> i32 {
    let mut experiment: Option<String> = None;
    let mut quick = false;
    let mut addr = DEFAULT_ADDR.to_string();
    let mut in_process = false;
    let mut out_dir = PathBuf::from(".");
    let mut check_golden: Option<PathBuf> = None;
    let mut assert_all_hits = false;
    let mut shutdown_after = false;
    let mut retry_secs = 10.0f64;
    let mut config = ServiceConfig::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--experiment" => experiment = Some(value("--experiment")?),
                "--quick" => quick = true,
                "--addr" => addr = value("--addr")?,
                "--in-process" => in_process = true,
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--check-golden" => check_golden = Some(PathBuf::from(value("--check-golden")?)),
                "--assert-all-hits" => assert_all_hits = true,
                "--shutdown" => shutdown_after = true,
                "--retry-secs" => {
                    retry_secs = value("--retry-secs")?
                        .parse()
                        .map_err(|e| format!("--retry-secs: {e}"))?
                }
                "--workers" => {
                    config.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--threads" => {
                    config.engine_threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--cache-dir" => config.cache.dir = Some(PathBuf::from(value("--cache-dir")?)),
                "--cache-bytes" => {
                    config.cache.max_bytes = value("--cache-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-bytes: {e}"))?
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: submit --experiment NAME [--quick] [--addr A | --in-process]\n\
                         \x20             [--out DIR] [--check-golden PATH] [--assert-all-hits]\n\
                         \x20             [--shutdown] [--retry-secs S]\n\
                         \x20             [--workers N] [--threads N] [--cache-dir DIR] [--cache-bytes N]\n\
                         \x20 --experiment NAME  grid to submit: {}\n\
                         \x20 --quick            quick effort (the CI smoke shape)\n\
                         \x20 --addr A           server endpoint (default: {DEFAULT_ADDR})\n\
                         \x20 --in-process       run an embedded service instead of connecting\n\
                         \x20 --out DIR          where SERVICE_*.json land (default: .)\n\
                         \x20 --check-golden P   exact-match the batch document against P\n\
                         \x20 --assert-all-hits  fail unless every job was a cache hit\n\
                         \x20 --shutdown         ask the server to stop after this batch\n\
                         \x20 --retry-secs S     keep retrying the connection this long (default: 10)\n\
                         \x20 --workers/--threads/--cache-dir/--cache-bytes: --in-process knobs",
                        EXPERIMENTS.join(", ")
                    );
                    return Err(String::new());
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    let Some(experiment) = experiment else {
        eprintln!("error: --experiment is required (try --help)");
        return 2;
    };
    let specs = match experiment_grid(&experiment, quick) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let effort = if quick { "quick" } else { "full" };
    eprintln!(
        "submitting {} {experiment} job(s) ({effort} effort, {})...",
        specs.len(),
        if in_process {
            "in-process".to_string()
        } else {
            format!("to {addr}")
        }
    );

    let (rows, stats) = if in_process {
        match run_in_process(config, &specs) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    } else {
        match run_remote(&addr, retry_secs, shutdown_after, &specs) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    };

    for row in &rows {
        eprintln!("  {:<40} {:>6}  {}", row.label, row.status, row.key);
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: creating {}: {e}", out_dir.display());
        return 1;
    }
    let doc_path = out_dir.join(format!("SERVICE_{experiment}_{effort}.json"));
    let document = batch_document(&experiment, effort, &rows);
    if let Err(e) = std::fs::write(&doc_path, &document) {
        eprintln!("error: writing {}: {e}", doc_path.display());
        return 1;
    }
    let stats_path = out_dir.join(format!("SERVICE_STATS_{experiment}_{effort}.json"));
    if let Err(e) = std::fs::write(
        &stats_path,
        stats_document(&experiment, effort, &stats, &rows),
    ) {
        eprintln!("error: writing {}: {e}", stats_path.display());
        return 1;
    }
    eprintln!("wrote {} and {}", doc_path.display(), stats_path.display());

    let mut failed = false;
    let failures: Vec<&Row> = rows.iter().filter(|r| r.status == "failed").collect();
    if !failures.is_empty() {
        for row in failures {
            eprintln!(
                "failed job {}: {}",
                row.label,
                row.error.as_deref().unwrap_or("unknown")
            );
        }
        failed = true;
    }
    if let Some(path) = check_golden {
        match golden::check(&path, &document, golden::Tolerance::exact()) {
            Ok(golden::Outcome::Match) => eprintln!("document matches {}", path.display()),
            Ok(golden::Outcome::Updated) => eprintln!("golden written: {}", path.display()),
            Err(diff) => {
                eprintln!("service document drift:\n{diff}");
                failed = true;
            }
        }
    }
    if assert_all_hits {
        let misses = rows.iter().filter(|r| r.status != "hit").count();
        if misses == 0 {
            eprintln!("all {} job(s) were cache hits", rows.len());
        } else {
            eprintln!(
                "cache-effectiveness assertion failed: {misses} of {} job(s) were not hits",
                rows.len()
            );
            failed = true;
        }
    }
    if failed {
        1
    } else {
        0
    }
}

fn run_in_process(config: ServiceConfig, specs: &[JobSpec]) -> Result<(Vec<Row>, String), String> {
    let service = Service::start(config).map_err(|e| format!("starting service: {e}"))?;
    let results = service.run_batch(specs.to_vec());
    if results.len() != specs.len() {
        return Err(format!(
            "service returned {} of {} results",
            results.len(),
            specs.len()
        ));
    }
    let rows = results
        .iter()
        .zip(specs)
        .map(|(result, spec)| Row {
            label: result.label.clone(),
            key: format!("{:016x}", result.key),
            spec: spec.to_canonical_json(),
            status: match result.status {
                JobStatus::Hit => "hit".to_string(),
                JobStatus::Executed => "done".to_string(),
                JobStatus::Failed => "failed".to_string(),
            },
            document: result.document.as_deref().map(str::to_string),
            error: result.error.clone(),
        })
        .collect();
    Ok((rows, stats_line(&service.snapshot())))
}

fn run_remote(
    addr: &str,
    retry_secs: f64,
    shutdown_after: bool,
    specs: &[JobSpec],
) -> Result<(Vec<Row>, String), String> {
    let mut client = Client::connect(addr, Some(Duration::from_secs_f64(retry_secs)))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let version = client.ping()?;
    if version != CODE_VERSION {
        return Err(format!(
            "server runs {version} but this client is {CODE_VERSION}: cached results would not be comparable"
        ));
    }
    let results = client.submit(specs)?;
    if results.len() != specs.len() {
        return Err(format!(
            "server returned {} of {} results",
            results.len(),
            specs.len()
        ));
    }
    let rows = results
        .iter()
        .zip(specs)
        .map(|(result, spec)| Row {
            label: result.label.clone(),
            key: result.key.clone(),
            spec: spec.to_canonical_json(),
            status: result.status.clone(),
            document: result.document.clone(),
            error: result.error.clone(),
        })
        .collect();
    let stats = client.stats()?;
    if shutdown_after {
        client.shutdown()?;
    }
    Ok((rows, stats))
}
