//! The experiment grids expressed as job batches.
//!
//! Each named grid enumerates exactly the arms the corresponding
//! launch-and-exit driver in `platoon-core` runs, using the same public
//! enumeration APIs (`table3::pairs`, `table4::arm_names`,
//! `perf::cell_labels`, `corridor::grid`, ...) — so a grid submitted
//! through the service warms the cache for the very cells the classic
//! drivers compute, and the two can never quietly drift apart.
//!
//! Note the cross-grid sharing this buys: Table III's undefended arms are
//! spelled identically to Table II's attacked arms, so submitting `table2`
//! then `table3` executes each shared arm once.

use crate::job::JobSpec;
use platoon_core::experiments::common::EXPERIMENT_BASE_SEED;
use platoon_core::experiments::{corridor, regimes, robustness, table3, table4};
use platoon_sim::harness::derive_seed;

/// The grid names [`experiment_grid`] accepts.
pub const EXPERIMENTS: [&str; 9] = [
    "table2",
    "table3",
    "table4",
    "robustness",
    "perf",
    "dataset",
    "regimes",
    "corridor",
    "smoke",
];

/// Builds the named experiment grid at the given effort.
pub fn experiment_grid(name: &str, quick: bool) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    match name {
        "table2" => {
            for desc in platoon_attacks::registry::catalog() {
                jobs.push(JobSpec::Arm {
                    attack: desc.name.to_string(),
                    mechanism: None,
                    quick,
                    seed: EXPERIMENT_BASE_SEED,
                });
                jobs.push(JobSpec::Baseline {
                    attack: desc.name.to_string(),
                    quick,
                    seed: EXPERIMENT_BASE_SEED,
                });
            }
        }
        "table3" => {
            for attack in table3::distinct_attacks() {
                jobs.push(JobSpec::Arm {
                    attack,
                    mechanism: None,
                    quick,
                    seed: EXPERIMENT_BASE_SEED,
                });
            }
            for (_mechanism, attack, variant) in table3::pairs() {
                jobs.push(JobSpec::Arm {
                    attack,
                    mechanism: Some(variant),
                    quick,
                    seed: EXPERIMENT_BASE_SEED,
                });
            }
        }
        "table4" => {
            for config in table4::CONFIGS {
                for attack in table4::arm_names() {
                    for s in 0..table4::SEEDS_PER_ARM {
                        jobs.push(JobSpec::Detection {
                            attack: attack.clone(),
                            config: config.to_string(),
                            quick,
                            seed: EXPERIMENT_BASE_SEED + s,
                        });
                    }
                }
            }
        }
        "robustness" => {
            for fault in robustness::FAULTS {
                for attack in robustness::ATTACKS {
                    for s in 0..robustness::SEEDS_PER_ARM {
                        jobs.push(JobSpec::Robustness {
                            fault: fault.to_string(),
                            attack: attack.to_string(),
                            quick,
                            seed: EXPERIMENT_BASE_SEED + s,
                        });
                    }
                }
            }
        }
        "perf" => {
            for cell in platoon_core::perf::cell_labels() {
                jobs.push(JobSpec::Perf {
                    cell: cell.to_string(),
                    quick,
                });
            }
        }
        "dataset" => {
            for attack in table4::arm_names() {
                for s in 0..platoon_dataset::factory::seeds_per_cell(quick) {
                    jobs.push(JobSpec::Dataset {
                        attack: attack.clone(),
                        quick,
                        seed: EXPERIMENT_BASE_SEED + s,
                    });
                }
            }
        }
        "regimes" => {
            for profile in regimes::PROFILES {
                for attack in regimes::ATTACKS {
                    jobs.push(JobSpec::Regime {
                        profile: profile.to_string(),
                        attack: attack.to_string(),
                        quick,
                        seed: EXPERIMENT_BASE_SEED,
                    });
                }
            }
        }
        "corridor" => {
            for cell in corridor::grid(quick) {
                jobs.push(JobSpec::Corridor {
                    label: cell.label.to_string(),
                    per: cell.per,
                    platoons: cell.platoons,
                    duration: cell.duration,
                    horizon: cell.horizon,
                    seed: derive_seed(cell.label, corridor::CORRIDOR_BASE_SEED),
                });
            }
        }
        // A cheap cross-section of every job kind except the corridor
        // (whose cells dominate wall time): the CI server-smoke batch and
        // the golden unit for the service determinism tests.
        "smoke" => {
            jobs.push(JobSpec::Arm {
                attack: "jamming".into(),
                mechanism: None,
                quick,
                seed: EXPERIMENT_BASE_SEED,
            });
            jobs.push(JobSpec::Baseline {
                attack: "jamming".into(),
                quick,
                seed: EXPERIMENT_BASE_SEED,
            });
            jobs.push(JobSpec::Detection {
                attack: "sybil".into(),
                config: "default".into(),
                quick,
                seed: EXPERIMENT_BASE_SEED,
            });
            jobs.push(JobSpec::Detection {
                attack: "benign".into(),
                config: "strict".into(),
                quick,
                seed: EXPERIMENT_BASE_SEED,
            });
            jobs.push(JobSpec::Robustness {
                fault: "none".into(),
                attack: "benign".into(),
                quick,
                seed: EXPERIMENT_BASE_SEED,
            });
            jobs.push(JobSpec::Robustness {
                fault: "burst-loss".into(),
                attack: "impersonation".into(),
                quick,
                seed: EXPERIMENT_BASE_SEED,
            });
            jobs.push(JobSpec::Perf {
                cell: "perf/acc/none/dsrc".into(),
                quick,
            });
            jobs.push(JobSpec::Perf {
                cell: "perf/cacc/pki/dsrc+detect".into(),
                quick,
            });
            jobs.push(JobSpec::Dataset {
                attack: "insider-fdi".into(),
                quick,
                seed: EXPERIMENT_BASE_SEED,
            });
        }
        other => {
            return Err(format!(
                "unknown experiment {other:?} (expected one of {})",
                EXPERIMENTS.join(", ")
            ))
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::cache_key;
    use std::collections::HashSet;

    #[test]
    fn every_grid_builds_and_labels_are_unique_within_it() {
        for name in EXPERIMENTS {
            let jobs = experiment_grid(name, true).expect(name);
            assert!(!jobs.is_empty(), "{name} grid is empty");
            let labels: HashSet<String> = jobs.iter().map(JobSpec::label).collect();
            assert_eq!(labels.len(), jobs.len(), "{name} has duplicate labels");
        }
        assert!(experiment_grid("bogus", true).is_err());
    }

    #[test]
    fn quick_grid_keys_never_collide() {
        // The collision-resistance sanity check over every key the quick
        // grids can produce: all distinct specs must map to distinct
        // 64-bit keys (table2/table3 intentionally share their undefended
        // arms — identical specs, identical keys — so dedup by spec
        // first).
        let mut specs = Vec::new();
        for name in EXPERIMENTS {
            specs.extend(experiment_grid(name, true).unwrap());
        }
        for name in EXPERIMENTS {
            specs.extend(experiment_grid(name, false).unwrap());
        }
        let mut seen: Vec<(u64, JobSpec)> = Vec::new();
        for spec in specs {
            let key = cache_key(&spec);
            if let Some((_, prior)) = seen.iter().find(|(k, _)| *k == key) {
                assert_eq!(
                    prior, &spec,
                    "distinct specs collided on key {key:016x}: {prior:?} vs {spec:?}"
                );
            } else {
                seen.push((key, spec));
            }
        }
    }

    #[test]
    fn table2_and_table3_share_their_undefended_arms() {
        let t2 = experiment_grid("table2", true).unwrap();
        let t3 = experiment_grid("table3", true).unwrap();
        let t2_keys: HashSet<u64> = t2.iter().map(cache_key).collect();
        let shared = t3
            .iter()
            .filter(|s| t2_keys.contains(&cache_key(s)))
            .count();
        assert!(
            shared > 0,
            "table3's undefended arms should hit table2's cache entries"
        );
    }
}
