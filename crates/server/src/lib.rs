//! # platoon-server
//!
//! Simulation-as-a-service: a long-running, thread-based job service
//! wrapped around the crash-isolated experiment harness core, fronted by a
//! **content-addressed result cache**.
//!
//! Every other driver in the workspace is launch-and-exit: it builds a
//! [`Batch`](platoon_sim::harness::Batch), runs it, writes a document, and
//! throws the results away. This crate keeps the results. Because every
//! simulation in the repo is deterministic given its scenario config and
//! seed, a completed result is valid *forever* — so the service keys each
//! job by the FNV-1a hash of the canonical JSON of `(spec, code version)`
//! and serves repeat submissions byte-identically from the cache.
//!
//! * [`job`] — the [`JobSpec`](job::JobSpec) vocabulary (one variant per
//!   experiment arm kind), its canonical-JSON codec, the cache key, and
//!   the job bodies that delegate to `platoon-core`.
//! * [`cache`] — the size-bounded LRU [`ResultCache`](cache::ResultCache)
//!   with optional on-disk persistence (one file per entry, reloaded on
//!   startup so results survive restarts).
//! * [`service`] — the in-process [`Service`](service::Service): a bounded
//!   worker pool over a shared queue, enqueue-time deduplication (identical
//!   in-flight jobs coalesce onto one execution), and per-job
//!   [`JobTiming`](platoon_sim::exec::JobTiming) so a service-side budget
//!   is never charged for queue wait.
//! * [`net`] — the line-delimited JSON protocol over localhost TCP, plus
//!   the [`Client`](net::Client).
//! * [`grids`] — the experiment grids (`table2` … `corridor`, plus the CI
//!   `smoke` set) expressed as job batches.
//! * [`cli`] — the `serve` and `submit` subcommands wired into the root
//!   and report binaries.
//!
//! # Example
//!
//! Submit the same job twice in-process; the second submission is a cache
//! hit and byte-identical:
//!
//! ```
//! use platoon_server::job::JobSpec;
//! use platoon_server::service::{Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig::default()).unwrap();
//! let spec = JobSpec::Perf { cell: "perf/acc/none/dsrc".into(), quick: true };
//! let first = service.run_batch(vec![spec.clone()]);
//! let second = service.run_batch(vec![spec]);
//! assert!(!first[0].status.is_hit());
//! assert!(second[0].status.is_hit());
//! assert_eq!(first[0].document, second[0].document);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod grids;
pub mod job;
pub mod net;
pub mod service;
