//! The content-addressed result cache: a size-bounded LRU map from
//! [`cache_key`](crate::job::cache_key) to canonical result documents,
//! optionally persisted one-file-per-entry so results survive restarts.
//!
//! Two invariants carry the whole design:
//!
//! * **byte identity** — a cached document is returned exactly as it was
//!   inserted (`Arc<str>`, never re-encoded), so a cache hit is
//!   indistinguishable from a fresh deterministic run;
//! * **bounded footprint** — inserts evict least-recently-used entries
//!   (and their files) until the byte budget holds again. The freshest
//!   entry is never evicted, even when it alone exceeds the budget —
//!   a cache that refuses the result it just computed helps no one.
//!
//! Only *successful* results are cached; failures stay ephemeral (a panic
//! or timeout says nothing deterministic about the spec).

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cache sizing and persistence knobs.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Total document bytes to hold before evicting (the bound is on
    /// document text, not on map overhead).
    pub max_bytes: usize,
    /// On-disk store directory; `None` = memory only.
    pub dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_bytes: 64 << 20,
            dir: None,
        }
    }
}

/// Hit/miss/churn counters, reported by `stats` requests and the CI
/// cache-stats artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a document.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Documents inserted.
    pub insertions: u64,
    /// Documents evicted by the byte bound.
    pub evictions: u64,
    /// Documents loaded from the on-disk store at startup.
    pub loaded: u64,
}

/// The LRU result cache. Not internally synchronised — the service wraps
/// it in its state mutex.
pub struct ResultCache {
    config: CacheConfig,
    entries: HashMap<u64, Arc<str>>,
    /// Recency order, least-recent first. Small enough (hundreds of grid
    /// cells) that linear touch updates beat an intrusive list.
    order: VecDeque<u64>,
    bytes: usize,
    stats: CacheStats,
}

/// The on-disk file name of a cache entry.
fn entry_file(key: u64) -> String {
    format!("{key:016x}.json")
}

/// Parses a `{key:016x}.json` file name back to its key.
fn parse_entry_file(name: &str) -> Option<u64> {
    let hex = name.strip_suffix(".json")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

impl ResultCache {
    /// Opens the cache; with a store directory set, creates it if missing
    /// and loads every persisted entry (sorted by file name, so the
    /// initial recency order is deterministic). Unparseable file names are
    /// ignored; unreadable files are errors.
    pub fn open(config: CacheConfig) -> std::io::Result<ResultCache> {
        let mut cache = ResultCache {
            config,
            entries: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            stats: CacheStats::default(),
        };
        if let Some(dir) = cache.config.dir.clone() {
            std::fs::create_dir_all(&dir)?;
            let mut names: Vec<(u64, PathBuf)> = Vec::new();
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                let name = entry.file_name();
                if let Some(key) = name.to_str().and_then(parse_entry_file) {
                    names.push((key, entry.path()));
                }
            }
            names.sort_by_key(|(key, _)| *key);
            for (key, path) in names {
                let text = std::fs::read_to_string(&path)?;
                cache.attach(key, Arc::from(text.as_str()));
                cache.stats.loaded += 1;
            }
            // The store may have been written under a larger budget.
            cache.evict_over_budget();
        }
        Ok(cache)
    }

    /// Looks a key up, counting the hit or miss and refreshing recency.
    pub fn get(&mut self, key: u64) -> Option<Arc<str>> {
        match self.entries.get(&key).cloned() {
            Some(doc) => {
                self.stats.hits += 1;
                self.touch(key);
                Some(doc)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a document, persisting it when a store directory is set and
    /// evicting LRU entries past the byte budget. Returns the shared
    /// document (the existing one if the key was already present — the
    /// determinism invariant makes any two documents for one key
    /// byte-identical, so first-write wins is safe).
    pub fn insert(&mut self, key: u64, document: &str) -> std::io::Result<Arc<str>> {
        if let Some(existing) = self.entries.get(&key).cloned() {
            self.touch(key);
            return Ok(existing);
        }
        if let Some(dir) = &self.config.dir {
            std::fs::write(dir.join(entry_file(key)), document)?;
        }
        let doc: Arc<str> = Arc::from(document);
        self.attach(key, doc.clone());
        self.stats.insertions += 1;
        self.evict_over_budget();
        Ok(doc)
    }

    /// Adds an entry to the maps without stats or persistence.
    fn attach(&mut self, key: u64, doc: Arc<str>) {
        self.bytes += doc.len();
        if self.entries.insert(key, doc).is_none() {
            self.order.push_back(key);
        }
    }

    /// Moves a key to the most-recent end.
    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }

    /// Evicts least-recent entries (and their files) while over budget,
    /// always sparing the most recent one.
    fn evict_over_budget(&mut self) {
        while self.bytes > self.config.max_bytes && self.order.len() > 1 {
            let Some(key) = self.order.pop_front() else {
                break;
            };
            if let Some(doc) = self.entries.remove(&key) {
                self.bytes -= doc.len();
                self.stats.evictions += 1;
            }
            if let Some(dir) = &self.config.dir {
                let _ = std::fs::remove_file(dir.join(entry_file(key)));
            }
        }
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total document bytes held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The hit/miss/churn counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The store directory, if persistence is on.
    pub fn dir(&self) -> Option<&Path> {
        self.config.dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(max_bytes: usize) -> ResultCache {
        ResultCache::open(CacheConfig {
            max_bytes,
            dir: None,
        })
        .expect("memory cache opens")
    }

    #[test]
    fn hits_are_byte_identical_and_counted() {
        let mut c = mem(1024);
        assert!(c.get(1).is_none());
        c.insert(1, "{\"x\": 1}").unwrap();
        let doc = c.get(1).expect("hit");
        assert_eq!(&*doc, "{\"x\": 1}");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        // Three 4-byte documents in an 8-byte budget: inserting C must
        // evict the least recently *used* entry — B, because A was
        // touched by a get after B landed.
        let mut c = mem(8);
        c.insert(0xA, "aaaa").unwrap();
        c.insert(0xB, "bbbb").unwrap();
        assert!(c.get(0xA).is_some(), "touch A so B becomes LRU");
        c.insert(0xC, "cccc").unwrap();
        assert!(c.get(0xB).is_none(), "B was least recently used");
        assert!(c.get(0xA).is_some(), "A was refreshed and survives");
        assert!(c.get(0xC).is_some(), "the newest entry always survives");
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
        assert!(c.bytes() <= 8);
    }

    #[test]
    fn oversized_newest_entry_is_spared() {
        let mut c = mem(4);
        c.insert(1, "way past the whole budget").unwrap();
        assert!(c.get(1).is_some(), "the only entry is never evicted");
        c.insert(2, "also enormous for this budget").unwrap();
        assert!(c.get(1).is_none(), "the older giant goes");
        assert!(c.get(2).is_some());
    }

    #[test]
    fn duplicate_insert_returns_the_first_document() {
        let mut c = mem(1024);
        let a = c.insert(9, "{\"v\": 1}").unwrap();
        let b = c.insert(9, "{\"v\": 1}").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second insert reuses the first doc");
        assert_eq!(c.stats().insertions, 1);
        assert_eq!(c.len(), 1);
    }
}
