//! The hardest case in the paper's catalogue: the **insider** (§V-A FDI) —
//! a legitimate member with valid keys that simply lies. Cryptography is
//! powerless by construction; only behavioural defenses respond.
//!
//! ```text
//! cargo run --release --example insider_threat
//! ```

use platoon_security::prelude::*;

fn scenario(label: &str, auth: AuthMode) -> Scenario {
    Scenario::builder()
        .label(label)
        .vehicles(6)
        .profile(SpeedProfile::BrakeTest {
            cruise: 25.0,
            low: 15.0,
            brake_at: 8.0,
            hold: 5.0,
        })
        .auth(auth)
        .duration(60.0)
        .seed(37)
        .build()
}

fn insider() -> FalsificationAttack {
    FalsificationAttack::new(FalsificationConfig {
        insider_index: 2,
        start: 15.0,
        end: f64::INFINITY,
        lie: BeaconLieConfig {
            accel_offset: -4.0,
            ..Default::default()
        },
    })
}

fn main() {
    println!("§V-A: 'The attacker can deliberately transmit false or misleading");
    println!("information. Members of the platoon will react to this information");
    println!("believing that it is from a legitimate source.'\n");

    let baseline = Engine::new(scenario("baseline", AuthMode::Pki)).run();

    // PKI alone: the insider's lies carry *valid* signatures.
    let mut pki = Engine::new(scenario("insider+pki", AuthMode::Pki));
    pki.add_attack(Box::new(insider()));
    let pki_run = pki.run();

    // Behavioural layer: resilient control bounds what the lies can do.
    let mut mitigated = Engine::new(scenario("insider+mitigation", AuthMode::Pki));
    mitigated.add_attack(Box::new(insider()));
    mitigated.add_defense(Box::new(
        MitigationDefense::new(MitigationConfig::default()),
    ));
    let mitigated_run = mitigated.run();

    println!(
        "{:<26} {:>12} {:>10} {:>10}",
        "arm", "osc. energy", "max err", "rejected"
    );
    for (name, s) in [
        ("clean baseline (PKI)", &baseline),
        ("insider, PKI only", &pki_run),
        ("insider + resilience", &mitigated_run),
    ] {
        println!(
            "{:<26} {:>12.0} {:>9.1}m {:>10}",
            name, s.oscillation_energy, s.max_spacing_error, s.rejected_messages
        );
    }

    println!(
        "\nshape: every insider lie verified perfectly ({} rejected messages under \
         PKI — cryptography cannot see the problem). Resilient control cuts the \
         disturbance {:.0}% without identifying anyone, which is exactly what the \
         paper says control algorithms can do: 'only reduce the impact of the \
         attack' (§VI-A.3).",
        pki_run.rejected_messages,
        (1.0 - mitigated_run.oscillation_energy / pki_run.oscillation_energy) * 100.0
    );
}
