//! The availability/authenticity double feature: a Sybil attacker floods the
//! leader with ghost vehicles (§V-A.2) while a join-flood DoS (§V-D) starves
//! a legitimate truck trying to get in — then the defenses take their turns.
//!
//! ```text
//! cargo run --release --example sybil_join_dos
//! ```

use platoon_security::prelude::*;

fn scenario(label: &str, auth: AuthMode, with_rsus: bool) -> Scenario {
    let mut b = Scenario::builder()
        .label(label)
        .vehicles(5)
        .max_platoon_size(16)
        .auth(auth)
        .duration(60.0)
        .seed(13);
    if with_rsus {
        for i in 0..8 {
            b = b.rsu((i as f64 * 300.0, 8.0));
        }
    }
    b.build()
}

fn report(tag: &str, engine: &Engine, summary: &RunSummary) {
    let physical = engine.world().vehicles.len();
    let roster = engine.maneuvers().roster().len();
    let joiner = engine
        .attacks()
        .iter()
        .find_map(|a| a.as_any().downcast_ref::<JoinerAgent>())
        .map(|j| j.outcome());
    println!(
        "{:<26} roster {:>2} (physical {:>2})  ghost-joins {:>2}  wasted-gap {:>6.1}s  legit: {}",
        tag,
        roster,
        physical,
        summary
            .maneuvers
            .joins_completed
            .saturating_sub(joiner.map(|j| u64::from(j.accepted)).unwrap_or(0)),
        summary.maneuvers.wasted_gap_seconds,
        match joiner {
            Some(o) if o.accepted =>
                format!("joined after {:.1}s", o.accept_latency.unwrap_or(0.0)),
            Some(o) if o.denied => "denied".to_string(),
            Some(_) => "starved".to_string(),
            None => "-".to_string(),
        }
    );
}

fn run(tag: &str, auth: AuthMode, rsus: bool, vpd: bool) {
    let mut engine = Engine::new(scenario(tag, auth, rsus));
    engine.add_attack(Box::new(SybilAttack::new(SybilConfig {
        start: 5.0,
        ghost_count: 5,
        ..Default::default()
    })));
    engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig {
        start: 5.0,
        rate_per_second: 100.0,
        ..Default::default()
    })));
    // In the PKI deployment the honest joiner carries real credentials from
    // the trusted authority (the attackers, of course, cannot).
    let credentials = if auth == AuthMode::Pki {
        let kp = KeyPair::from_seed(600);
        let cert = engine
            .ca_mut()
            .issue(PrincipalId(600), kp.public(), 0.0, 3_600.0);
        JoinerCredentials::Pki {
            signer: Signer::new(kp),
            certificate: cert,
        }
    } else {
        JoinerCredentials::None
    };
    engine.add_attack(Box::new(
        JoinerAgent::new(
            PrincipalId(600),
            NodeId(600),
            credentials,
            platoon_security::proto::messages::PlatoonId(1),
            1.0,
        )
        .with_start(15.0),
    ));
    if rsus {
        engine.add_defense(Box::new(RsuDefense::new(RsuConfig {
            preregistered: vec![600],
            ..Default::default()
        })));
    }
    if vpd {
        // The strict profile evicts confirmed identities — right for Sybil,
        // where a ghost's stream has no honest half worth preserving.
        engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::strict())));
    }
    let summary = engine.run();
    report(tag, &engine, &summary);
}

fn main() {
    println!("§V-A.2 + §V-D: five ghost vehicles and a 100 req/s join flood hit the");
    println!("leader while one honest truck tries to join.\n");

    run("undefended", AuthMode::None, false, false);
    run("PKI admission", AuthMode::Pki, false, false);
    run("VPD-ADA (physical)", AuthMode::None, false, true);
    run("RSU gatekeeper", AuthMode::None, true, false);

    println!(
        "\nshape: undefended, the roster fills with phantoms and the honest truck \
         is starved or badly delayed. PKI kills both attacks at the envelope \
         (no valid credentials), VPD-ADA kills them on physics (RSSI/co-location \
         say the ghosts are not where they claim), and the RSU gatekeeper sheds \
         the unregistered flood before the leader spends anything on it."
    );
}
