//! The paper's §V-B jamming scenario vs the §VI-A.4 SP-VLC hybrid defense:
//! a roadside jammer floods the 802.11p band; the RF-only platoon falls back
//! to radar gaps (the platooning benefit evaporates), while the hybrid
//! platoon relays leader data hop-by-hop over the optical channel and holds
//! formation.
//!
//! ```text
//! cargo run --release --example jamming_vs_hybrid
//! ```

use platoon_security::prelude::*;

fn scenario(label: &str, comms: CommsMode) -> Scenario {
    Scenario::builder()
        .label(label)
        .vehicles(6)
        .comms(comms)
        .duration(60.0)
        .seed(5)
        .build()
}

fn jammer() -> JammingAttack {
    JammingAttack::new(JammingConfig {
        start: 10.0,
        power_dbm: 33.0,
        ..Default::default()
    })
}

fn main() {
    println!("§V-B: 'it becomes impossible for the platoon to maintain its");
    println!("communications ... All savings are lost by disbanding the platoon.'\n");

    let clean = Engine::new(scenario("clean", CommsMode::DsrcOnly)).run();

    let mut rf = Engine::new(scenario("jammed RF-only", CommsMode::DsrcOnly));
    rf.add_attack(Box::new(jammer()));
    let rf_run = rf.run();

    let mut hybrid = Engine::new(scenario("jammed hybrid VLC", CommsMode::HybridVlc));
    hybrid.add_attack(Box::new(jammer()));
    let hybrid_run = hybrid.run();

    println!(
        "{:<22} {:>9} {:>12} {:>10} {:>12}",
        "arm", "PDR", "info age", "max err", "fuel L/100km"
    );
    for (name, s) in [
        ("clean", &clean),
        ("jammed, RF only", &rf_run),
        ("jammed, hybrid VLC", &hybrid_run),
    ] {
        println!(
            "{:<22} {:>9.3} {:>10.2}s {:>9.1}m {:>12.1}",
            name,
            s.leader_tail_pdr,
            s.tail_leader_age_mean,
            s.max_spacing_error,
            s.fuel_l_per_100km
        );
    }

    println!(
        "\nshape: jamming crushes RF delivery (PDR {:.2} → {:.2}) and the RF-only \
         string opens to radar-fallback gaps ({:.0} m error). The hybrid arm keeps \
         leader data {:.1} s fresh through the optical relay chain and holds its \
         10 m gaps — and burns {:.1}% less fuel than the jammed RF platoon.",
        clean.leader_tail_pdr,
        rf_run.leader_tail_pdr,
        rf_run.max_spacing_error,
        hybrid_run.tail_leader_age_mean,
        (1.0 - hybrid_run.fuel_l_per_100km / rf_run.fuel_l_per_100km) * 100.0
    );
}
