//! Regenerates the paper's taxonomies and the ISO/SAE 21434-style risk
//! assessment that answers its §VI-B.4 open challenge.
//!
//! ```text
//! cargo run --release --example risk_report
//! cargo run --release --example risk_report -- --measure   # adds measured Table II
//! ```

use platoon_core::experiments::table2;
use platoon_core::{risk, surveys};

fn main() {
    // Table I: the related-survey landscape and its platoon gap.
    println!("{}", surveys::render_table1().render());
    println!("{}", surveys::render_coverage_matrix().render());

    // The attack catalogue (Table II as data).
    println!("== Table II — the canonical attack catalogue ==");
    for d in platoon_security::attacks::registry::catalog() {
        println!(
            "{:<28} [{}] {} — assets: {:?}  (impl: {}, experiment {})",
            d.display_name, d.attribute, d.section, d.assets, d.module, d.experiment
        );
    }
    println!();

    // The mechanism catalogue (Table III as data) with open challenges.
    println!("== Table III — mechanisms and open challenges ==");
    for m in platoon_security::defense::registry::catalog() {
        println!("{:<26} mitigates {:?}", m.display_name, m.mitigates);
        println!("{:<26} open challenge: {}", "", m.open_challenge);
    }
    println!();

    // The risk assessment (experiment F11).
    println!("{}", risk::render_risk_table().render());
    println!("rationales:");
    for e in risk::assessment() {
        println!(
            "  {:<22} feasibility: {}",
            e.display_name, e.feasibility_rationale
        );
        println!("  {:<22} impact     : {}", "", e.impact_rationale);
    }

    if std::env::args().any(|a| a == "--measure") {
        println!("\nmeasuring Table II impacts (quick effort)...");
        let rows = table2::run(true);
        println!("{}", table2::render(&rows).render());
    }
}
