//! Quickstart: build a platoon, run it, inspect the metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use platoon_security::prelude::*;

fn main() {
    // An 8-truck platoon at a 10 m CACC gap, cruising at 25 m/s with a
    // sinusoidal leader perturbation (the classic string-stability probe).
    let scenario = Scenario::builder()
        .label("quickstart")
        .vehicles(8)
        .controller(ControllerKind::Cacc)
        .desired_gap(10.0)
        .profile(SpeedProfile::Sinusoid {
            mean: 25.0,
            amplitude: 1.5,
            period: 20.0,
        })
        .duration(60.0)
        .seed(7)
        .build();

    let mut engine = Engine::new(scenario);
    let summary = engine.run();

    println!("== quickstart: healthy 8-truck CACC platoon ==");
    println!("{}", summary.one_line());
    println!();
    println!("string stable            : {}", summary.string_stable);
    println!(
        "worst L∞ amplification   : {:.3}",
        summary.worst_amplification
    );
    println!(
        "max spacing error        : {:.2} m",
        summary.max_spacing_error
    );
    println!("minimum bumper gap       : {:.2} m", summary.min_gap);
    println!("collisions               : {}", summary.collisions);
    println!("leader→tail beacon PDR   : {:.3}", summary.leader_tail_pdr);
    println!(
        "fleet fuel consumption   : {:.1} L/100km",
        summary.fuel_l_per_100km
    );

    // Compare with the no-communication baseline: ACC needs much larger
    // time-gap spacing, surrendering the platooning benefit.
    let acc = Engine::new(
        Scenario::builder()
            .label("acc-baseline")
            .vehicles(8)
            .controller(ControllerKind::Acc)
            .duration(60.0)
            .seed(7)
            .build(),
    )
    .run();
    println!();
    println!("== baseline: same platoon on radar-only ACC ==");
    println!("{}", acc.one_line());
    println!(
        "ACC mean spacing error {:.1} m vs CACC {:.1} m — the gap cooperation buys",
        acc.mean_abs_spacing_error, summary.mean_abs_spacing_error
    );
}
