//! The paper's §V-A.1 replay scenario end to end: record the platoon's
//! braking manoeuvre, replay it during cruise, watch the string oscillate —
//! then deploy signatures + anti-replay windows and watch it not.
//!
//! ```text
//! cargo run --release --example replay_attack
//! ```

use platoon_security::prelude::*;

fn scenario(label: &str, auth: AuthMode) -> Scenario {
    Scenario::builder()
        .label(label)
        .vehicles(6)
        .profile(SpeedProfile::BrakeTest {
            cruise: 25.0,
            low: 15.0,
            brake_at: 8.0,
            hold: 5.0,
        })
        .auth(auth)
        .duration(60.0)
        .seed(3)
        .build()
}

fn attack() -> ReplayAttack {
    ReplayAttack::new(ReplayConfig {
        record_from: 0.0,
        replay_from: 15.0,
        replay_rate: 50.0,
        ..Default::default()
    })
}

fn main() {
    println!("§V-A.1: 'the attacker will make the platoon oscillate as members try");
    println!("to position themselves based on the information they receive'\n");

    // Arm 1: the clean baseline.
    let baseline = Engine::new(scenario("baseline", AuthMode::None)).run();

    // Arm 2: undefended platoon under replay.
    let mut undefended = Engine::new(scenario("replayed", AuthMode::None));
    undefended.add_attack(Box::new(attack()));
    let attacked = undefended.run();
    let a = undefended.attacks()[0]
        .as_any()
        .downcast_ref::<ReplayAttack>()
        .unwrap();
    println!(
        "attacker recorded {} frames, replayed {} of them",
        a.recorded_count(),
        a.replayed_count()
    );

    // Arm 3: PKI alone — replayed signatures are still valid signatures.
    let mut pki_only = Engine::new(scenario("replayed+pki", AuthMode::Pki));
    pki_only.add_attack(Box::new(attack()));
    let pki = pki_only.run();

    // Arm 4: PKI + timestamp anti-replay window (§VI-A.1's full mechanism).
    let mut defended = Engine::new(scenario("replayed+pki+fresh", AuthMode::Pki));
    defended.add_attack(Box::new(attack()));
    defended.add_defense(Box::new(AntiReplayDefense::timestamp()));
    let fresh = defended.run();

    println!(
        "\n{:<24} {:>12} {:>10} {:>10}",
        "arm", "osc. energy", "max err", "rejected"
    );
    for (name, s) in [
        ("clean baseline", &baseline),
        ("replay, undefended", &attacked),
        ("replay + PKI only", &pki),
        ("replay + PKI + fresh", &fresh),
    ] {
        println!(
            "{:<24} {:>12.0} {:>9.1}m {:>10}",
            name, s.oscillation_energy, s.max_spacing_error, s.rejected_messages
        );
    }
    println!(
        "\nshape: replay inflates oscillation {}x; signatures alone do not help \
         (replayed messages verify!); the freshness window restores the baseline.",
        (attacked.oscillation_energy / baseline.oscillation_energy).round()
    );
}
