//! Batch harness: run an experiment grid across a worker pool, then prove
//! the report does not depend on the worker count.
//!
//! ```text
//! cargo run --release --example batch_harness
//! ```

use platoon_security::prelude::*;
use platoon_sim::harness::{default_workers, derive_seed};
use std::time::Instant;

fn batch() -> Batch<RunSummary> {
    // A small auth × comms slice of the scenario-matrix grid. Each cell's
    // seed derives from its label and the base seed — print one to show the
    // derivation is plain data, not scheduling.
    let mut batch = Batch::new(2021);
    for auth in [AuthMode::None, AuthMode::GroupMac, AuthMode::Pki] {
        for comms in [CommsMode::DsrcOnly, CommsMode::HybridVlc] {
            batch.push_scenario(
                Scenario::builder()
                    .label(format!("{auth:?}/{comms:?}"))
                    .vehicles(6)
                    .auth(auth)
                    .comms(comms)
                    .duration(30.0)
                    .build(),
            );
        }
    }
    batch
}

fn main() {
    println!(
        "seed for \"Pki/DsrcOnly\" under base 2021: {:#018x}\n",
        derive_seed("Pki/DsrcOnly", 2021)
    );

    let t0 = Instant::now();
    let serial = batch().run_report(1);
    let serial_time = t0.elapsed();

    let workers = default_workers();
    let t1 = Instant::now();
    let parallel = batch().run_report(workers);
    let parallel_time = t1.elapsed();

    for (_, summary) in parallel.summaries() {
        println!("{}", summary.one_line());
    }
    println!("\n1 worker: {serial_time:.2?}   {workers} workers: {parallel_time:.2?}");
    println!(
        "reports byte-identical: {}",
        serial.to_canonical_json() == parallel.to_canonical_json()
    );
}
