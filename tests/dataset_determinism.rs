//! Integration: the dataset factory's shards are deterministic — byte for
//! byte — regardless of how many harness workers assembled them, the
//! train/test split is disjoint by construction, and the row labels agree
//! with the simulation's ground truth.

use platoon_security::dataset::columnar::Shard;
use platoon_security::dataset::factory::export_grid;

#[test]
fn shards_are_byte_identical_across_worker_counts() {
    let (train_serial, test_serial) = export_grid(true, 1);
    let (train_parallel, test_parallel) = export_grid(true, 8);

    let train_bytes = train_serial.encode();
    let test_bytes = test_serial.encode();
    assert_eq!(
        train_bytes,
        train_parallel.encode(),
        "train shard must be byte-identical at any worker count"
    );
    assert_eq!(
        test_bytes,
        test_parallel.encode(),
        "test shard must be byte-identical at any worker count"
    );
    assert_eq!(train_serial.digest(), train_parallel.digest());
    assert_eq!(test_serial.digest(), test_parallel.digest());

    // And what was written is exactly what decodes back.
    assert_eq!(Shard::decode(&train_bytes).unwrap(), train_serial);
    assert_eq!(Shard::decode(&test_bytes).unwrap(), test_serial);
}

#[test]
fn split_is_disjoint_and_labels_agree_with_truth() {
    let (train, test) = export_grid(true, 8);

    // Whole-cell split: no cell label (attack arm × seed offset) appears
    // in both shards, and the two shards cover distinct seeds.
    for tc in &train.cells {
        assert!(
            !test.cells.iter().any(|c| c.label == tc.label),
            "cell {} appears in both splits",
            tc.label
        );
    }
    assert!(!train.cells.is_empty() && !test.cells.is_empty());

    // Label agreement with the simulation's TruthLabels: the insider's
    // forged beacons are convicted (in every split holding that arm),
    // benign cells never are.
    for shard in [&train, &test] {
        for cell in &shard.cells {
            assert_eq!(cell.features.len(), cell.labels.len(), "{}", cell.label);
            if cell.label.starts_with("insider-fdi/") {
                assert!(
                    cell.positives() > 0,
                    "insider cell {} exported no malicious rows",
                    cell.label
                );
                assert!(
                    cell.positives() < cell.labels.len() as u64,
                    "insider cell {} labeled even pre-attack traffic malicious",
                    cell.label
                );
            }
            if cell.label.starts_with("benign/") {
                assert_eq!(
                    cell.positives(),
                    0,
                    "benign cell {} has malicious rows",
                    cell.label
                );
            }
        }
    }
}
