//! Integration: failure injection — the platoon under *non-adversarial*
//! faults. A security stack that falls over on ordinary packet loss or a
//! flaky sensor would be useless on a real road.

use platoon_security::dynamics::sensors::SensorFault;
use platoon_security::prelude::*;
use platoon_security::v2x::prelude::RadioMedium;

/// A lossy-channel fault: degrades the PHY so that fading losses are common
/// (models heavy rain / urban clutter, not an attack).
fn lossy_medium() -> RadioMedium {
    let mut m = RadioMedium::default();
    // Raise the noise floor 12 dB: fringe links get marginal.
    m.dsrc.noise_floor_dbm += 12.0;
    m
}

#[test]
fn platoon_survives_a_degraded_channel() {
    let scenario = Scenario::builder()
        .vehicles(6)
        .medium(lossy_medium())
        .duration(40.0)
        .seed(21)
        .build();
    let s = Engine::new(scenario).run();
    assert_eq!(
        s.collisions, 0,
        "packet loss alone must never crash the platoon"
    );
    // Losses show, but the platoon remains usable.
    assert!(s.leader_tail_pdr < 1.0);
    assert!(s.max_spacing_error < 25.0);
}

#[test]
fn platoon_survives_radar_dropouts() {
    let scenario = Scenario::builder()
        .vehicles(6)
        .duration(40.0)
        .seed(22)
        .build();
    let mut engine = Engine::new(scenario);
    // Scoped radar outages from the faults crate: deterministic windows and
    // restoration guaranteed even if a window straddles the end of the run.
    engine.add_fault(Box::new(SensorOutage::radar(
        3,
        vec![
            FaultWindow::new(5.0, 5.5),
            FaultWindow::new(12.0, 12.5),
            FaultWindow::new(20.0, 21.0),
            FaultWindow::new(28.0, 29.0),
            FaultWindow::new(39.8, 60.0), // straddles the end of the run
        ],
    )));
    let s = engine.run();
    assert_eq!(s.collisions, 0, "sensor dropouts are routine, not fatal");
    assert!(s.min_gap > 2.0, "gap margin survived: {}", s.min_gap);
    assert_eq!(
        engine.world().vehicles[3].sensors.radar.fault,
        SensorFault::None,
        "the outage fault must hand the radar back after the run"
    );
}

#[test]
fn defenses_tolerate_the_degraded_channel() {
    // Packet loss must not trigger false detections or evictions.
    let scenario = Scenario::builder()
        .vehicles(6)
        .auth(AuthMode::Pki)
        .medium(lossy_medium())
        .duration(40.0)
        .seed(23)
        .build();
    let mut engine = Engine::new(scenario);
    engine.add_defense(Box::new(AntiReplayDefense::timestamp()));
    engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
    engine.add_defense(Box::new(TrustDefense::new(TrustConfig::default())));
    let s = engine.run();
    assert_eq!(s.collisions, 0);
    assert_eq!(s.detections, 0, "loss must not look like misbehaviour");
}

#[test]
fn leader_dropout_degrades_gracefully() {
    // The leader's platooning service dies mid-run (hardware fault): the
    // followers lose their feed and degrade to radar following without a
    // crash.
    let scenario = Scenario::builder()
        .vehicles(5)
        .duration(40.0)
        .seed(24)
        .build();
    let mut engine = Engine::new(scenario);
    for _ in 0..150 {
        engine.step();
    }
    engine.world_mut().vehicles[0].platooning_enabled = false;
    for _ in 0..250 {
        engine.step();
    }
    let s = engine.summary();
    assert_eq!(
        s.collisions, 0,
        "losing the leader's comms must be survivable"
    );
    assert!(s.service_down_fraction > 0.4);
}
