//! Integration: failure injection — the platoon under *non-adversarial*
//! faults. A security stack that falls over on ordinary packet loss or a
//! flaky sensor would be useless on a real road.

use platoon_security::prelude::*;
use platoon_security::sim::world::World;
use platoon_security::v2x::prelude::RadioMedium;
use rand::rngs::StdRng;
use std::any::Any;

/// A lossy-channel fault: degrades the PHY so that fading losses are common
/// (models heavy rain / urban clutter, not an attack).
fn lossy_medium() -> RadioMedium {
    let mut m = RadioMedium::default();
    // Raise the noise floor 12 dB: fringe links get marginal.
    m.dsrc.noise_floor_dbm += 12.0;
    m
}

/// A benign "fault agent" that randomly blinds one vehicle's radar for short
/// windows (sensor dropouts).
#[derive(Debug)]
struct RadarFlaker {
    victim: usize,
    outage_until: f64,
}

impl Attack for RadarFlaker {
    fn name(&self) -> &'static str {
        "radar-flaker"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Availability
    }

    fn before_comm(&mut self, world: &mut World, rng: &mut StdRng) {
        use platoon_security::dynamics::sensors::SensorFault;
        use rand::Rng;
        let now = world.time;
        let Some(v) = world.vehicles.get_mut(self.victim) else {
            return;
        };
        if now < self.outage_until {
            v.sensors.radar.fault = SensorFault::Outage;
        } else {
            v.sensors.radar.fault = SensorFault::None;
            // ~1 outage of 0.5 s per 5 s on average.
            if rng.gen_range(0.0..1.0) < 0.02 {
                self.outage_until = now + 0.5;
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn platoon_survives_a_degraded_channel() {
    let scenario = Scenario::builder()
        .vehicles(6)
        .medium(lossy_medium())
        .duration(40.0)
        .seed(21)
        .build();
    let s = Engine::new(scenario).run();
    assert_eq!(
        s.collisions, 0,
        "packet loss alone must never crash the platoon"
    );
    // Losses show, but the platoon remains usable.
    assert!(s.leader_tail_pdr < 1.0);
    assert!(s.max_spacing_error < 25.0);
}

#[test]
fn platoon_survives_radar_dropouts() {
    let scenario = Scenario::builder()
        .vehicles(6)
        .duration(40.0)
        .seed(22)
        .build();
    let mut engine = Engine::new(scenario);
    engine.add_attack(Box::new(RadarFlaker {
        victim: 3,
        outage_until: 0.0,
    }));
    let s = engine.run();
    assert_eq!(s.collisions, 0, "sensor dropouts are routine, not fatal");
    assert!(s.min_gap > 2.0, "gap margin survived: {}", s.min_gap);
}

#[test]
fn defenses_tolerate_the_degraded_channel() {
    // Packet loss must not trigger false detections or evictions.
    let scenario = Scenario::builder()
        .vehicles(6)
        .auth(AuthMode::Pki)
        .medium(lossy_medium())
        .duration(40.0)
        .seed(23)
        .build();
    let mut engine = Engine::new(scenario);
    engine.add_defense(Box::new(AntiReplayDefense::timestamp()));
    engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
    engine.add_defense(Box::new(TrustDefense::new(TrustConfig::default())));
    let s = engine.run();
    assert_eq!(s.collisions, 0);
    assert_eq!(s.detections, 0, "loss must not look like misbehaviour");
}

#[test]
fn leader_dropout_degrades_gracefully() {
    // The leader's platooning service dies mid-run (hardware fault): the
    // followers lose their feed and degrade to radar following without a
    // crash.
    let scenario = Scenario::builder()
        .vehicles(5)
        .duration(40.0)
        .seed(24)
        .build();
    let mut engine = Engine::new(scenario);
    for _ in 0..150 {
        engine.step();
    }
    engine.world_mut().vehicles[0].platooning_enabled = false;
    for _ in 0..250 {
        engine.step();
    }
    let s = engine.summary();
    assert_eq!(
        s.collisions, 0,
        "losing the leader's comms must be survivable"
    );
    assert!(s.service_down_fraction > 0.4);
}
