//! Tier-1 guarantees for the trace subsystem (ISSUE 5's acceptance
//! criteria): the `trace` experiment's JSONL is byte-identical across
//! worker counts, `trace-diff` pinpoints the first diverging tick/phase
//! between different-seed traces, and a saturated `EventLog` can no
//! longer silently undercount a summary.

use platoon_core::experiments::common::EXPERIMENT_BASE_SEED;
use platoon_core::experiments::trace::{run_with, to_canonical_json, DEFAULT_ATTACK};
use platoon_sim::prelude::{Event, EventLog};
use platoon_trace::diff_traces;

#[test]
fn trace_jsonl_is_byte_identical_across_1_and_8_workers() {
    let serial = run_with(true, 1, DEFAULT_ATTACK, None);
    let parallel = run_with(true, 8, DEFAULT_ATTACK, None);
    assert!(!serial.jsonl.is_empty(), "the traced arm emits records");
    assert_eq!(
        serial.jsonl, parallel.jsonl,
        "TRACE JSONL must be byte-identical at 1 vs 8 workers"
    );
    assert_eq!(
        to_canonical_json(&serial),
        to_canonical_json(&parallel),
        "the canonical document (digest included) must match too"
    );
    // trace-diff on the pair reports no divergence.
    assert_eq!(diff_traces(&serial.jsonl, &parallel.jsonl), None);
    // The digest in the summary is the digest of the emitted stream.
    let summary = serial.report.summary(&format!("trace/{DEFAULT_ATTACK}"));
    let digest = summary.trace.expect("tracer attached");
    assert_eq!(digest.records, serial.jsonl.lines().count() as u64);
    assert_eq!(digest.dropped, 0);
}

#[test]
fn trace_diff_pinpoints_the_first_diverging_tick_between_seeds() {
    let a = run_with(true, 2, DEFAULT_ATTACK, Some(EXPERIMENT_BASE_SEED));
    let b = run_with(true, 2, DEFAULT_ATTACK, Some(EXPERIMENT_BASE_SEED + 7));
    let d = diff_traces(&a.jsonl, &b.jsonl)
        .expect("different seeds drive different channel noise: traces must diverge");
    assert!(
        d.tick.is_some(),
        "divergence names a tick: {}",
        d.describe()
    );
    let description = d.describe();
    assert!(
        description.contains("tick"),
        "human rendering names the tick: {description}"
    );
}

#[test]
fn saturated_event_log_fails_loudly_instead_of_undercounting() {
    // Regression pin for the EventLog-saturation fix: `count()` on a
    // saturated log used to silently return the retained-only tally.
    let mut log = EventLog::new(2);
    for i in 0..6 {
        log.push(i as f64, Event::Collision { rear_index: i });
    }
    assert_eq!(log.dropped(), 4);
    let panicked =
        std::panic::catch_unwind(|| log.count(|e| matches!(e, Event::Collision { .. }))).is_err();
    assert!(panicked, "count() must refuse to tally a truncated log");
    assert_eq!(
        log.count_retained(|e| matches!(e, Event::Collision { .. })),
        2,
        "the explicit lower-bound accessor still works"
    );
}
