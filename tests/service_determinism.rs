//! End-to-end determinism of the job service through the real binary:
//! `submit --in-process` twice against one cache directory must produce a
//! byte-identical batch document (golden-pinned), with the second pass
//! served entirely from the persisted cache.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "platoon-service-determinism-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn submit(cache: &Path, out: &Path, extra: &[&str]) {
    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/service_quick.json");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_platoon-security"));
    cmd.args(["submit", "--experiment", "smoke", "--quick", "--in-process"])
        .arg("--cache-dir")
        .arg(cache)
        .arg("--out")
        .arg(out)
        .arg("--check-golden")
        .arg(&golden)
        .args(extra);
    let output = cmd.output().expect("run platoon-security submit");
    assert!(
        output.status.success(),
        "submit failed (status {:?}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn resubmitting_the_smoke_grid_is_all_hits_and_byte_identical() {
    let root = scratch("smoke");
    let cache = root.join("cache");
    let out_fresh = root.join("fresh");
    let out_cached = root.join("cached");

    // First pass: executes every job, pins (or writes) the golden.
    submit(&cache, &out_fresh, &[]);
    // Second pass: a fresh process over the same cache directory must be
    // 100% hits — proving on-disk persistence — and still match the golden.
    submit(&cache, &out_cached, &["--assert-all-hits"]);

    let fresh = std::fs::read(out_fresh.join("SERVICE_smoke_quick.json")).expect("fresh document");
    let cached =
        std::fs::read(out_cached.join("SERVICE_smoke_quick.json")).expect("cached document");
    assert_eq!(
        fresh, cached,
        "cache hits must be byte-identical to fresh executions"
    );

    let stats = std::fs::read_to_string(out_cached.join("SERVICE_STATS_smoke_quick.json"))
        .expect("stats document");
    assert!(stats.contains("\"all_hits\": true"), "{stats}");

    std::fs::remove_dir_all(&root).ok();
}
