//! Property tests: an engine snapshot taken at *any* point of a
//! regime-diverse, faulted, attacked, traced run restores to a
//! continuation that is byte-identical to the uninterrupted run — same
//! [`RunSummary`], same trace digest, same perf counters, same end-state
//! digest — for any seed, any engine thread count, any split point.
//!
//! This is the contract the `regimes --resume-check` CI gate relies on:
//! `Engine::snapshot` captures the *entire* simulation state (world, rng
//! stream position, detector tracks, fusion scores, regime bookkeeping,
//! trace digest), so a restored engine can neither lose nor replay a tick.

use platoon_security::prelude::*;
use platoon_trace::TraceRecorder;
use proptest::prelude::*;

const STEP: f64 = 0.1;
const DURATION: f64 = 6.0;

/// A small but fully-loaded engine: a three-phase regime plan, a channel
/// fault, an insider attack, the stock detector bank, and a trace
/// recorder — every subsystem a snapshot must carry.
fn build_engine(seed: u64, threads: usize) -> Engine {
    let plan = RegimePlan::new(vec![
        RegimePhase::new("cruise", 2.5).with_profile(SpeedProfile::Constant { speed: 22.0 }),
        RegimePhase::new("stop-and-go", 2.0)
            .with_profile(SpeedProfile::UrbanDrive {
                min: 4.0,
                max: 18.0,
                phase: 1.0,
                seed: 5,
            })
            .with_noise(2.0),
        RegimePhase::new("tunnel", 1.5)
            .with_noise(10.0)
            .with_beacon_every(2),
    ]);
    let scenario = Scenario::builder()
        .label(format!("regime-snap/{seed:#x}"))
        .vehicles(4)
        .duration(DURATION)
        .seed(seed)
        .regimes(plan)
        .build();
    let mut engine = Engine::new(scenario);
    engine.set_threads(threads);
    engine.add_fault(Box::new(NoiseFloorRamp::new(1.0, 2.0, 6.0)));
    engine.add_attack(Box::new(FalsificationAttack::new(FalsificationConfig {
        start: 2.0,
        ..Default::default()
    })));
    engine.attach_detector_config(PipelineConfig::default_profile());
    engine.attach_tracer(Box::new(TraceRecorder::new()));
    engine
}

proptest! {
    #[test]
    fn snapshot_restore_resume_is_byte_identical(
        seed in any::<u64>(),
        threads in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        split_tenths in 1u64..10,
    ) {
        let mut straight = build_engine(seed, threads);
        let straight_summary = straight.run();

        let mut interrupted = build_engine(seed, threads);
        let total = steps_for(DURATION, STEP);
        interrupted.fast_forward(total * split_tenths / 10);
        let snapshot = interrupted.snapshot().expect("loaded engine snapshots");
        prop_assert_eq!(snapshot.tick(), total * split_tenths / 10);
        drop(interrupted);

        let mut resumed = snapshot.restore().expect("snapshot restores");
        let resumed_summary = resumed.run();

        // RunSummary equality covers every metric, the perf counters, and
        // the trace digest (a tracer was attached, so the digest pins the
        // full record stream of both runs).
        prop_assert_eq!(&straight_summary, &resumed_summary);
        prop_assert!(straight_summary.trace.is_some());
        // The engines also agree on their complete end state.
        prop_assert_eq!(straight.state_digest(), resumed.state_digest());
        prop_assert_eq!(straight.perf(), resumed.perf());
        prop_assert_eq!(straight.alerts(), resumed.alerts());
    }

    #[test]
    fn snapshot_is_reusable_and_tolerates_repeated_restores(seed in any::<u64>()) {
        let mut engine = build_engine(seed, 2);
        engine.fast_forward(20);
        let snapshot = engine.snapshot().expect("engine snapshots");
        // Restoring is non-destructive: two rehydrations from the same
        // snapshot run to identical conclusions.
        let mut a = snapshot.restore().expect("first restore");
        let mut b = snapshot.restore().expect("second restore");
        let sa = a.run();
        let sb = b.run();
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(a.state_digest(), b.state_digest());
        // And the original engine is untouched by the snapshot: it can
        // keep stepping and lands in the same place.
        let original = engine.run();
        prop_assert_eq!(original, a.summary());
    }
}
