//! Regression: the flood detector's rate limit must come from the
//! scenario's configured beacon rate, not a hardcoded 10 Hz assumption.
//!
//! The old limit was `flood_factor * 10.0` — 30 beacons per second under
//! the default factor regardless of scenario. Any honest platoon beaconing
//! past that (40 Hz safety beaconing, say) was mislabeled as a flood.
//! `Engine::attach_detector_config` now derives the nominal rate from the
//! scenario (`1 / comm_step`), so honest high-rate traffic is silent at
//! any configured rate, while a genuine flood at the same nominal rate
//! stays caught (pinned unit-side in `platoon_detect::frequency`).

use platoon_security::prelude::*;

fn scenario_at(label: &str, comm_step: f64) -> Scenario {
    Scenario::builder()
        .label(label)
        .vehicles(6)
        .duration(30.0)
        .max_platoon_size(16)
        .comm_step(comm_step)
        .seed(2021)
        .build()
}

/// Alerts to which the frequency detector contributed.
fn frequency_alerts(engine: &Engine) -> usize {
    engine
        .alerts()
        .iter()
        .filter(|a| a.contributors.iter().any(|(name, _)| *name == "frequency"))
        .count()
}

#[test]
fn benign_20hz_platoon_raises_no_frequency_alerts() {
    let mut engine = Engine::new(scenario_at("detect/benign-20hz", 0.05));
    engine.attach_detector_config(PipelineConfig::default_profile());
    let summary = engine.run();
    assert_eq!(summary.collisions, 0);
    assert_eq!(
        frequency_alerts(&engine),
        0,
        "honest 20 Hz beaconing flagged as flood: {:?}",
        engine.alerts()
    );
    assert!(
        engine.alerts().is_empty(),
        "honest 20 Hz platoon raised {:?}",
        engine.alerts()
    );
}

#[test]
fn benign_40hz_platoon_is_silent_once_the_rate_is_scenario_derived() {
    // 40 Hz is past the old hardcoded 30/s limit, so this exact scenario
    // used to drown in frequency false positives (see the companion test
    // below). With the attach path deriving the limit from comm_step it
    // must be completely silent.
    let mut engine = Engine::new(scenario_at("detect/benign-40hz", 0.025));
    engine.attach_detector_config(PipelineConfig::default_profile());
    engine.run();
    assert_eq!(
        frequency_alerts(&engine),
        0,
        "honest 40 Hz beaconing flagged as flood: {:?}",
        engine.alerts()
    );
}

#[test]
fn the_old_hardcoded_rate_assumption_flags_the_same_benign_run() {
    // Pin the bug this file guards against: force the pre-fix assumption
    // (nominal 10 Hz, the old hardcoded constant) onto the same honest
    // 40 Hz scenario by bypassing the rate-plumbing attach path. Honest
    // senders are then convicted as flooders — the false-positive storm
    // the scenario-derived limit eliminates.
    let mut engine = Engine::new(scenario_at("detect/benign-40hz-oldbug", 0.025));
    let config = PipelineConfig::default_profile();
    assert_eq!(
        config.frequency.nominal_rate_hz, 10.0,
        "default config still documents the legacy 10 Hz assumption"
    );
    engine.attach_detectors(Pipeline::new(config));
    engine.run();
    assert!(
        frequency_alerts(&engine) > 0,
        "the 10 Hz assumption should mislabel honest 40 Hz traffic"
    );
}
