//! Integration: the scenario configuration grid, run through the parallel
//! experiment harness and pinned by a golden summary snapshot.
//!
//! Every combination of controller family, key deployment and channel
//! deployment must produce a functioning platoon — the engine may not have
//! hidden coupling between those axes. The 48-cell grid runs across the
//! harness worker pool (per-cell seeds derived from the cell label, so the
//! report is scheduling-independent) and the resulting [`BatchReport`] is
//! asserted against `tests/golden/scenario_matrix.json`. Refresh the golden
//! after an intended behaviour change with `UPDATE_GOLDEN=1 cargo test`.

use platoon_security::prelude::*;
use platoon_sim::harness::golden::{self, Tolerance};
use std::path::Path;

const GRID_BASE_SEED: u64 = 99;

fn grid_batch() -> Batch<RunSummary> {
    let controllers = [
        ControllerKind::Acc,
        ControllerKind::Cacc,
        ControllerKind::Ploeg,
        ControllerKind::Consensus,
    ];
    let auths = [
        AuthMode::None,
        AuthMode::GroupMac,
        AuthMode::EncryptedGroupMac,
        AuthMode::Pki,
    ];
    let comms = [
        CommsMode::DsrcOnly,
        CommsMode::HybridVlc,
        CommsMode::HybridCv2x,
    ];

    let mut batch = Batch::new(GRID_BASE_SEED);
    for controller in controllers {
        for auth in auths {
            for comm in comms {
                batch.push_scenario(
                    Scenario::builder()
                        .label(format!("{controller:?}/{auth:?}/{comm:?}"))
                        .vehicles(4)
                        .controller(controller)
                        .auth(auth)
                        .comms(comm)
                        .duration(15.0)
                        .build(),
                );
            }
        }
    }
    batch
}

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

#[test]
fn controller_auth_comms_grid_is_sound() {
    let report = grid_batch().run_report(4);
    assert_eq!(
        report.entries.len(),
        48,
        "4 controllers × 4 auths × 3 comms"
    );

    // Semantic invariants per cell, independent of the snapshot. Grid cells
    // carry no injected failures, so every outcome must be Ok.
    for entry in &report.entries {
        let s = entry
            .value
            .as_ok()
            .unwrap_or_else(|| panic!("{} failed unexpectedly", entry.label));
        assert_eq!(s.collisions, 0, "{} crashed", entry.label);
        assert_eq!(
            s.rejected_messages, 0,
            "{} rejected honest traffic",
            entry.label
        );
        assert!(s.min_gap > 0.5, "{} unsafe gap {}", entry.label, s.min_gap);
    }

    // Snapshot regression: every metric of every cell is pinned.
    golden::assert_matches(
        &golden_path("scenario_matrix.json"),
        &report.to_canonical_json(),
        Tolerance::snapshot(),
    );
}

#[test]
fn platoon_size_scales() {
    let mut batch = Batch::new(5);
    for n in [2usize, 4, 8, 12, 16] {
        batch.push_scenario(
            Scenario::builder()
                .label(format!("size/{n}"))
                .vehicles(n)
                .max_platoon_size(n.max(16))
                .duration(20.0)
                .build(),
        );
    }
    let report = batch.run_report(4);
    for (n, entry) in [2usize, 4, 8, 12, 16].into_iter().zip(&report.entries) {
        let s = entry
            .value
            .as_ok()
            .unwrap_or_else(|| panic!("size {n} failed unexpectedly"));
        assert_eq!(s.collisions, 0, "size {n} crashed");
        // Long strings accumulate sensor/channel noise; accept either the
        // strict amplification criterion or tightly-bounded absolute errors.
        assert!(
            s.string_stable || s.max_spacing_error < 2.0,
            "size {n} unstable: amp {}, err {}",
            s.worst_amplification,
            s.max_spacing_error
        );
    }
}

#[test]
fn car_platoons_work_like_truck_platoons() {
    let scenario = Scenario::builder()
        .params(VehicleParams::car())
        .vehicles(6)
        .desired_gap(6.0)
        .duration(30.0)
        .build();
    let s = Engine::new(scenario).run();
    assert_eq!(s.collisions, 0);
    assert!(s.max_spacing_error < 3.0);
}

#[test]
fn runs_are_bitwise_deterministic_across_the_full_stack() {
    let run = || {
        let mut engine = Engine::new(
            Scenario::builder()
                .vehicles(5)
                .auth(AuthMode::Pki)
                .duration(20.0)
                .seed(1234)
                .build(),
        );
        engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
            replay_from: 8.0,
            ..Default::default()
        })));
        engine.add_defense(Box::new(AntiReplayDefense::timestamp()));
        engine.add_defense(Box::new(
            MitigationDefense::new(MitigationConfig::default()),
        ));
        engine.run()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.oscillation_energy.to_bits(),
        b.oscillation_energy.to_bits()
    );
    assert_eq!(a.max_spacing_error.to_bits(), b.max_spacing_error.to_bits());
    assert_eq!(a.rejected_messages, b.rejected_messages);
    assert_eq!(a.leader_tail_pdr.to_bits(), b.leader_tail_pdr.to_bits());
}

#[test]
fn longer_runs_remain_stable() {
    // 5 simulated minutes: no slow divergence, counter overflow or drift.
    let scenario = Scenario::builder()
        .vehicles(6)
        .duration(300.0)
        .seed(8)
        .build();
    let s = Engine::new(scenario).run();
    assert_eq!(s.collisions, 0);
    assert!(s.string_stable);
    assert!(
        s.max_spacing_error < 2.0,
        "drift detected: {}",
        s.max_spacing_error
    );
}
