//! Integration: detection runs are deterministic through the parallel
//! experiment harness — the alert stream, and everything scored from it,
//! is byte-identical whether a batch runs on 1 worker or many.
//!
//! This is the Table-IV golden's load-bearing guarantee: detector state is
//! all ordered (`BTreeMap`/`Vec`), evidence is raised at ingest time, and
//! per-arm seeds derive from labels, never from scheduling.

use platoon_security::core::experiments::common::Effort;
use platoon_security::core::experiments::table4::detection_arm;
use platoon_security::prelude::*;
use platoon_sim::harness::json;

/// A small detection batch spanning attributed, channel-level and benign
/// arms (the three alert shapes).
fn detection_batch() -> Batch<DetectionSummary> {
    let effort = Effort::quick();
    let mut batch = Batch::new(2021);
    for attack in ["impersonation", "sybil", "jamming", "benign"] {
        batch.push_with_seed(format!("det4/{attack}"), 2021, move |seed| {
            detection_arm(attack, "default", effort, seed)
        });
    }
    batch
}

/// Canonical rendering of the batch for byte comparison, including the
/// non-finite fields (`inf` latency on the benign arm, `nan` attribution
/// on the channel-only jamming arm).
fn serialize(entries: &[BatchEntry<DetectionSummary>]) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_arr("entries", |w| {
            for e in entries {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("label", &e.label);
                        w.field_u64("seed", e.seed);
                        w.field_u64("alerts", e.value.alerts as u64);
                        w.field_u64("true_positives", e.value.true_positives as u64);
                        w.field_u64("false_positives", e.value.false_positives as u64);
                        w.field_bool("detected", e.value.detected);
                        w.field_f64("first_detection_latency", e.value.first_detection_latency);
                        w.field_f64("attribution_accuracy", e.value.attribution_accuracy);
                    })
                });
            }
        });
    });
    w.finish()
}

#[test]
fn detection_batch_is_byte_identical_across_worker_counts() {
    let serial = serialize(&detection_batch().run(1));
    let parallel = serialize(&detection_batch().run(4));
    assert_eq!(
        serial, parallel,
        "worker count leaked into the detection results"
    );
    // Not vacuous: the batch actually detected things.
    assert!(serial.contains("\"detected\": true"));
    // And the non-finite encodings actually appear in the document.
    assert!(serial.contains("\"inf\""), "benign arm must never detect");
    assert!(
        serial.contains("\"nan\""),
        "channel-only arm has no attribution to judge"
    );
}

#[test]
fn detection_run_repeats_byte_identically() {
    let a = serialize(&detection_batch().run(2));
    let b = serialize(&detection_batch().run(2));
    assert_eq!(a, b, "repeat detection batches must serialize identically");
}
