//! Integration: the online detection pipeline (`platoon-detect`) wired
//! into the engine catches each major Table II attack class end-to-end —
//! with an attributed alert inside a per-attack latency budget — and stays
//! completely silent on honest traffic.

use platoon_security::prelude::*;

fn scenario(label: &str) -> Scenario {
    Scenario::builder()
        .label(label)
        .vehicles(6)
        .duration(30.0)
        .max_platoon_size(16)
        .seed(2021)
        .build()
}

/// The first alert naming the given principal, if any.
fn first_alert_naming(engine: &Engine, suspect: PrincipalId) -> Option<f64> {
    engine
        .alerts()
        .iter()
        .find(|a| a.target == AlertTarget::Sender(suspect))
        .map(|a| a.time)
}

#[test]
fn clean_run_raises_no_alarms_under_either_profile() {
    for (name, config) in [
        ("default", PipelineConfig::default_profile()),
        ("strict", PipelineConfig::strict()),
    ] {
        let mut engine = Engine::new(scenario("detect/clean"));
        engine.attach_detector_config(config);
        let summary = engine.run();
        assert!(
            engine.alerts().is_empty(),
            "{name}: honest platoon raised {:?}",
            engine.alerts()
        );
        assert_eq!(summary.detections, 0, "{name}");
    }
}

#[test]
fn replay_is_detected_when_the_replays_start() {
    let mut engine = Engine::new(scenario("detect/replay"));
    engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
        record_from: 0.0,
        replay_from: 10.0,
        ..Default::default()
    })));
    engine.attach_detector_config(PipelineConfig::default_profile());
    engine.run();
    let first = engine.alerts().first().expect("replays must alert").time;
    assert!(
        (10.0..13.0).contains(&first),
        "stale replayed frames should alert promptly after 10 s: {first}"
    );
    // Replayed frames carry member identities; the alert is attributed to
    // the replayed stream, not to thin air.
    assert!(engine
        .alerts()
        .iter()
        .all(|a| matches!(a.target, AlertTarget::Sender(_))));
}

#[test]
fn impersonated_victim_stream_is_flagged() {
    let mut engine = Engine::new(scenario("detect/impersonation"));
    engine.add_attack(Box::new(ImpersonationAttack::new(ImpersonationConfig {
        start: 10.0,
        duration: 10.0,
        ..Default::default()
    })));
    engine.attach_detector_config(PipelineConfig::default_profile());
    engine.run();
    let t = first_alert_naming(&engine, PrincipalId(1))
        .expect("the impersonated identity must be flagged");
    assert!(
        (10.0..12.0).contains(&t),
        "contradictory dual stream should alert within 2 s: {t}"
    );
}

#[test]
fn sybil_ghosts_are_flagged_as_a_burst() {
    let mut engine = Engine::new(scenario("detect/sybil"));
    engine.add_attack(Box::new(SybilAttack::new(SybilConfig {
        start: 10.0,
        ..Default::default()
    })));
    engine.attach_detector_config(PipelineConfig::default_profile());
    engine.run();
    let ghost_alert = engine
        .alerts()
        .iter()
        .find(|a| matches!(a.target, AlertTarget::Sender(p) if p.0 >= 7_000))
        .expect("ghost identities must be flagged");
    assert!(
        ghost_alert.time < 15.0,
        "new-identity burst should alert within 5 s: {}",
        ghost_alert.time
    );
}

#[test]
fn jamming_raises_a_channel_alarm() {
    let mut engine = Engine::new(scenario("detect/jamming"));
    engine.add_attack(Box::new(JammingAttack::new(JammingConfig {
        start: 10.0,
        ..Default::default()
    })));
    engine.attach_detector_config(PipelineConfig::default_profile());
    engine.run();
    let channel = engine
        .alerts()
        .iter()
        .find(|a| a.target == AlertTarget::Channel)
        .expect("an unattributable outage must raise a channel alarm");
    assert!(
        (10.0..16.0).contains(&channel.time),
        "beacon silence should alarm within the silence budget: {}",
        channel.time
    );
    // Jamming is attributed to the channel, not pinned on an innocent
    // member (the §V-B "who do you blame" problem).
    assert!(engine.events().count(|e| matches!(e, Event::ChannelAlarm)) >= 1);
}

#[test]
fn malware_silenced_vehicle_is_flagged_by_the_strict_profile() {
    // DisablePlatooning turns the infected vehicle silent; selective-silence
    // evidence accumulates per observer and crosses the strict threshold.
    let mut engine = Engine::new(scenario("detect/malware"));
    engine.add_attack(Box::new(MalwareAttack::new(MalwareConfig {
        infect_at: 3.0,
        ..Default::default()
    })));
    engine.attach_detector_config(PipelineConfig::strict());
    engine.run();
    let infected: Vec<PrincipalId> = engine
        .world()
        .vehicles
        .iter()
        .filter(|v| v.infected)
        .map(|v| v.principal)
        .collect();
    assert!(!infected.is_empty(), "patient zero must be infected");
    let flagged = engine
        .alerts()
        .iter()
        .find(|a| matches!(a.target, AlertTarget::Sender(p) if infected.contains(&p)))
        .expect("a silenced infected vehicle must be flagged");
    assert!(
        flagged.time < 25.0,
        "silence after incubation should be flagged in-run: {}",
        flagged.time
    );
}
