//! Tier-1 guarantees for the highway-scale corridor (ISSUE 6's acceptance
//! criteria): intra-run parallel stepping is byte-identical to serial
//! stepping, the spatial-index fast path is exact when the horizon covers
//! the world, a 5000-vehicle corridor runs with far fewer medium pair
//! samples than the all-pairs scan would take, and the world's O(1)
//! lookup maps stay consistent through joins and splits.

use platoon_core::experiments::common::{make_attack, Effort};
use platoon_core::experiments::corridor::{
    corridor_arm, corridor_scenario, CORRIDOR_BASE_SEED, CORRIDOR_HORIZON_M,
};
use platoon_detect::pipeline::PipelineConfig;
use platoon_sim::engine::Engine;
use platoon_sim::prelude::Scenario;
use platoon_trace::TraceRecorder;

/// One corridor arm at an explicit engine-thread count (2 platoons of
/// 5 trucks, split + merge + joiner all exercised).
fn small_corridor(threads: usize) -> platoon_core::experiments::corridor::CorridorRun {
    corridor_arm(
        "corridor/scale/2x5",
        5,
        2,
        10.0,
        CORRIDOR_HORIZON_M,
        threads,
        CORRIDOR_BASE_SEED,
    )
}

#[test]
fn corridor_is_byte_identical_at_1_vs_4_engine_threads() {
    let serial = small_corridor(1);
    let sharded = small_corridor(4);
    assert_eq!(
        serial.summary, sharded.summary,
        "RunSummary must not depend on the engine thread count"
    );
    let d1 = serial.summary.trace.expect("tracer attached");
    let dn = sharded.summary.trace.expect("tracer attached");
    assert_eq!(
        (d1.records, d1.dropped, d1.hash),
        (dn.records, dn.dropped, dn.hash),
        "per-tick trace digests must be byte-identical at 1 vs 4 threads"
    );
    assert_eq!(serial.pairs_considered, sharded.pairs_considered);
    // The run is not degenerate: the split and the join both happened.
    assert!(serial.summary.maneuvers.splits >= 1);
    assert!(serial.summary.maneuvers.joins_accepted >= 1);
}

/// Runs the default-style attacked + detected scenario at a given radio
/// horizon and returns (summary, medium pair samples).
fn attacked_run(horizon: f64) -> (platoon_sim::prelude::RunSummary, u64) {
    let effort = Effort::quick();
    let scenario = Scenario::builder()
        .label("corridor/horizon-equivalence")
        .vehicles(6)
        .duration(effort.duration)
        .seed(2021)
        .radio_horizon(horizon)
        .build();
    let mut engine = Engine::new(scenario);
    engine.add_attack(make_attack("sybil", effort));
    engine.attach_detector_config(PipelineConfig::default_profile());
    let summary = engine.run();
    (summary, engine.medium_pairs_considered())
}

#[test]
fn covering_horizon_is_exactly_equivalent_to_all_pairs() {
    // A horizon far beyond the world span admits every (frame, receiver)
    // pair, so the indexed path must reproduce the legacy scan bit for
    // bit: same summary, same number of pairs sampled, same rng stream.
    let (all_pairs, pairs_scan) = attacked_run(f64::INFINITY);
    let (indexed, pairs_indexed) = attacked_run(50_000.0);
    assert_eq!(
        all_pairs, indexed,
        "a covering horizon must not change the run"
    );
    assert_eq!(pairs_scan, pairs_indexed);
    assert!(pairs_scan > 0, "the run exchanged frames");
}

#[test]
fn five_thousand_vehicle_corridor_runs_indexed() {
    // 500 platoons of 10 trucks: the ISSUE's highway scale. Two comm
    // ticks are enough to prove the world builds, steps, and that the
    // spatial index keeps the medium's pair sampling far below the
    // all-pairs bound (~frames x receivers per tick).
    let run = corridor_arm(
        "corridor/scale/500x10",
        10,
        500,
        0.2,
        CORRIDOR_HORIZON_M,
        4,
        CORRIDOR_BASE_SEED,
    );
    assert_eq!(run.vehicles, 5000);
    assert_eq!(run.summary.collisions, 0);
    // All-pairs would sample >= vehicles * (vehicles - 1) pairs per tick;
    // with a 750 m horizon over a ~200 km corridor the index must cut
    // that by well over an order of magnitude.
    let ticks = 2u64;
    let all_pairs_bound = ticks * 5000 * 4999;
    assert!(
        run.pairs_considered > 0,
        "frames were exchanged on the corridor"
    );
    assert!(
        run.pairs_considered * 10 < all_pairs_bound,
        "spatial index only sampled {} pairs vs all-pairs bound {}",
        run.pairs_considered,
        all_pairs_bound
    );
}

#[test]
fn lookup_maps_survive_joins_and_splits() {
    // Drive a corridor world through its split + merge + join lifecycle
    // and check, at every tick, that the O(1) principal/node lookup maps
    // agree with a linear scan for every vehicle on the road.
    let scenario = corridor_scenario("corridor/scale/lookup", 6, 2, 12.0, CORRIDOR_HORIZON_M)
        .seed(CORRIDOR_BASE_SEED)
        .build();
    let comm_step = scenario.comm_step;
    let mut engine = Engine::new(scenario);
    engine.attach_tracer(Box::new(TraceRecorder::new()));
    engine.add_attack(Box::new(platoon_core::experiments::common::legit_joiner(
        0.5,
    )));
    let steps = (12.0 / comm_step).round() as u64;
    for step in 0..steps {
        if step == steps / 3 {
            let _ = engine.command_split(3);
        }
        if step == steps * 2 / 3 {
            let _ = engine.command_merge();
        }
        engine.step();
        let world = engine.world();
        for (i, v) in world.vehicles.iter().enumerate() {
            assert_eq!(
                world.index_of(v.principal),
                Some(i),
                "principal lookup diverged at tick {step} for vehicle {i}"
            );
            assert_eq!(
                world.index_of_node(v.node),
                Some(i),
                "node lookup diverged at tick {step} for vehicle {i}"
            );
        }
    }
    let summary = engine.summary();
    assert!(
        summary.maneuvers.joins_accepted >= 1,
        "the joiner was accepted mid-run, so the maps saw a membership change"
    );
}

#[test]
fn platoon_layout_matches_legacy_scans_on_a_split_world() {
    // platoon_layout() is the one-pass replacement for the per-vehicle
    // platoon_local_index / platoon_leader_index scans; on a world that
    // has split into multiple platoon ids the two must agree everywhere.
    let scenario = corridor_scenario("corridor/scale/layout", 6, 2, 4.0, CORRIDOR_HORIZON_M)
        .seed(CORRIDOR_BASE_SEED)
        .build();
    let comm_step = scenario.comm_step;
    let mut engine = Engine::new(scenario);
    let steps = (4.0 / comm_step).round() as u64;
    for step in 0..steps {
        if step == 2 {
            let _ = engine.command_split(3);
        }
        engine.step();
    }
    let world = engine.world();
    let platoon_ids: std::collections::HashSet<_> =
        world.vehicles.iter().map(|v| v.platoon).collect();
    assert!(
        platoon_ids.len() >= 3,
        "split produced a third platoon id alongside the corridor's two"
    );
    let layout = world.platoon_layout();
    assert_eq!(layout.local_index.len(), world.vehicles.len());
    for i in 0..world.vehicles.len() {
        assert_eq!(layout.local_index[i], world.platoon_local_index(i));
        assert_eq!(layout.leader_index[i], world.platoon_leader_index(i));
    }
}
