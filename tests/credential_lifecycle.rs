//! Integration: the credential lifecycle across crypto → proto → sim.
//!
//! Provisioning, pseudonym rotation, wire round-trips, revocation taking
//! effect mid-run — the glue the per-crate unit tests cannot cover.

use platoon_security::crypto::cert::{CertificateAuthority, PrincipalId};
use platoon_security::crypto::key_agreement::{
    eavesdropper_correlation, run_agreement, FadingKeyAgreementConfig,
};
use platoon_security::crypto::keys::KeyPair;
use platoon_security::crypto::pseudonym::{ChangePolicy, PseudonymPool};
use platoon_security::crypto::signature::Signer;
use platoon_security::prelude::*;
use platoon_security::proto::envelope::Envelope;
use platoon_security::proto::messages::{PlatoonId, PlatoonMessage};
use rand::SeedableRng;

#[test]
fn pseudonymous_signing_chain_verifies_end_to_end() {
    let mut ca = CertificateAuthority::new(PrincipalId(1000), KeyPair::from_seed(1000));
    let mut pool = PseudonymPool::provision(
        &mut ca,
        42,
        4,
        0.0,
        3_600.0,
        ChangePolicy::Periodic { period: 60.0 },
    );

    // Sign a join request under each pseudonym as the pool rotates.
    for round in 0..4 {
        let now = round as f64 * 61.0;
        pool.maybe_change(now, 5);
        let p = pool.current();
        let msg = PlatoonMessage::JoinRequest {
            requester: p.id,
            platoon: PlatoonId(1),
            position: 100.0,
            timestamp: now,
        };
        let env = Envelope::sign(p.id, &msg, &Signer::new(p.keypair), p.certificate);
        // Over the wire and back.
        let decoded = Envelope::decode(&env.encode()).expect("wire roundtrip");
        let verified = decoded
            .verify_signed(&ca.public(), ca.id(), now)
            .expect("pseudonymous signature verifies");
        assert_eq!(verified, msg);
    }
    assert!(pool.change_count() >= 3);
}

#[test]
fn mid_run_revocation_evicts_a_member() {
    // An impersonation is detected out-of-band; the TA revokes the victim's
    // certificate mid-run and the platoon stops accepting its beacons.
    let scenario = Scenario::builder()
        .vehicles(5)
        .auth(AuthMode::Pki)
        .duration(30.0)
        .seed(55)
        .build();
    let mut engine = Engine::new(scenario);

    // Run 10 s clean.
    for _ in 0..100 {
        engine.step();
    }
    let before = engine.run_summary_rejected();

    // Revoke vehicle 2's certificate.
    let serial = {
        let v = &engine.world().vehicles[2];
        match &v.auth {
            platoon_security::sim::world::AuthMaterial::Pki { certificate, .. } => {
                certificate.serial()
            }
            _ => unreachable!("PKI scenario"),
        }
    };
    engine.ca_mut().revoke(serial);

    // Run 10 more seconds: the revoked member's beacons are now rejected.
    for _ in 0..100 {
        engine.step();
    }
    let after = engine.run_summary_rejected();
    assert!(
        after > before + 100,
        "revocation should reject the member's beacons: {before} → {after}"
    );
}

/// Helper trait to read the rejected-message counter mid-run.
trait RejectedProbe {
    fn run_summary_rejected(&self) -> usize;
}

impl RejectedProbe for Engine {
    fn run_summary_rejected(&self) -> usize {
        self.summary().rejected_messages
    }
}

#[test]
fn fading_key_agreement_feeds_group_encryption() {
    // Agree on a key over the fading channel, reconcile, derive a symmetric
    // key, and use it for an encrypted envelope — the full §VI-A.1 pipeline.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let out = run_agreement(
        &FadingKeyAgreementConfig {
            eavesdropper_correlation: eavesdropper_correlation(1.0),
            ..Default::default()
        },
        &mut rng,
    );
    let (ka, kb) = out.reconcile(4);
    // With default reciprocity the reconciled keys agree almost always; for
    // the deterministic seed they must match exactly.
    assert_eq!(ka, kb, "reconciled keys must agree for this seed");
    let key = platoon_security::crypto::key_agreement::AgreementOutcome::to_symmetric_key(&ka);

    let msg = PlatoonMessage::LeaveRequest {
        member: PrincipalId(3),
        platoon: PlatoonId(1),
        timestamp: 9.0,
    };
    let env = Envelope::seal_encrypted(PrincipalId(3), &msg, &key, 1);
    assert_eq!(env.open_encrypted(&key).unwrap(), msg);
    // An eavesdropper's (different) key fails.
    let eve_key =
        platoon_security::crypto::key_agreement::AgreementOutcome::to_symmetric_key(&out.bits_eve);
    assert!(env.open_encrypted(&eve_key).is_err());
}

#[test]
fn group_key_deployment_accepts_members_and_rejects_outsiders() {
    let scenario = Scenario::builder()
        .vehicles(4)
        .auth(AuthMode::GroupMac)
        .duration(15.0)
        .seed(3)
        .build();
    let mut engine = Engine::new(scenario);
    // An outsider injecting plain envelopes is rejected wholesale.
    engine.add_attack(Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
        inject_at: 5.0,
        repeat_period: 1.0,
        ..Default::default()
    })));
    let s = engine.run();
    assert_eq!(s.fragmented_fraction, 0.0);
    assert!(s.rejected_messages > 5);
    assert_eq!(s.collisions, 0);
}

#[test]
fn group_rekey_screens_out_an_evicted_member() {
    // §VI-A.2: "updating the keys so that anomalous users can be screened
    // out faster". A group-keyed platoon detects an insider liar and rotates
    // the key without it: the insider's subsequent (still-lying) beacons all
    // fail verification.
    let scenario = Scenario::builder()
        .vehicles(5)
        .auth(AuthMode::GroupMac)
        .duration(40.0)
        .seed(71)
        .build();
    let mut engine = Engine::new(scenario);
    engine.add_attack(Box::new(FalsificationAttack::new(FalsificationConfig {
        insider_index: 2,
        start: 5.0,
        end: f64::INFINITY,
        lie: BeaconLieConfig {
            accel_offset: -4.0,
            ..Default::default()
        },
    })));

    // Phase 1: the insider lies with a valid group key — accepted.
    for _ in 0..100 {
        engine.step();
    }
    let rejected_before = engine.summary().rejected_messages;
    assert_eq!(rejected_before, 0, "valid-key lies pass verification");

    // Phase 2: the fleet operator rotates the key without the insider.
    engine.rekey_excluding(&[platoon_security::crypto::cert::PrincipalId(2)]);
    for _ in 0..100 {
        engine.step();
    }
    let rejected_after = engine.summary().rejected_messages;
    assert!(
        rejected_after > 80,
        "the evicted insider's beacons must now fail: {rejected_after}"
    );

    // The follower of the evicted member degrades to radar but stays safe.
    assert_eq!(engine.summary().collisions, 0);
}

#[test]
fn group_rekey_is_seamless_for_remaining_members() {
    let scenario = Scenario::builder()
        .vehicles(5)
        .auth(AuthMode::EncryptedGroupMac)
        .duration(30.0)
        .seed(72)
        .build();
    let mut engine = Engine::new(scenario);
    for _ in 0..100 {
        engine.step();
    }
    engine.rekey_excluding(&[]);
    for _ in 0..100 {
        engine.step();
    }
    let s = engine.summary();
    assert_eq!(
        s.rejected_messages, 0,
        "a clean rotation must not drop traffic"
    );
    assert_eq!(s.collisions, 0);
    assert!(s.max_spacing_error < 3.0);
}
