//! Integration: the legitimate manoeuvre protocol end to end — the flows
//! §II-B describes, which the fake-manoeuvre attack later abuses.

use platoon_security::prelude::*;
use platoon_security::proto::messages::PlatoonId;

#[test]
fn leader_initiated_split_divides_the_platoon_cleanly() {
    let scenario = Scenario::builder()
        .vehicles(6)
        .duration(40.0)
        .seed(61)
        .build();
    let mut engine = Engine::new(scenario);

    // Cruise 10 s, split behind the third vehicle, run out the clock.
    for _ in 0..100 {
        engine.step();
    }
    let new_platoon = engine.command_split(3).expect("valid split index");
    for _ in 0..300 {
        engine.step();
    }
    let s = engine.summary();

    // Membership and physics agree.
    assert_eq!(
        engine.maneuvers().roster().len(),
        3,
        "front roster after split"
    );
    assert_eq!(engine.world().platoon_count(), 2, "two physical platoons");
    assert_eq!(
        engine.world().vehicles[3].platoon,
        new_platoon,
        "vehicle 3 leads the new platoon"
    );
    assert_eq!(
        engine.world().vehicles[3].role,
        platoon_security::proto::messages::Role::Leader
    );
    assert_eq!(s.collisions, 0, "a commanded split must be safe");
    assert!(s.fragmented_fraction > 0.5, "the split persisted");
    // The split-off platoon opens to ACC spacing behind the front platoon.
    let gap = engine.world().true_gap(3).unwrap();
    assert!(
        gap > 15.0,
        "split-off leader backs off to a safe gap: {gap}"
    );
}

#[test]
fn leader_initiated_gap_open_and_expiry() {
    let scenario = Scenario::builder()
        .vehicles(5)
        .duration(40.0)
        .seed(62)
        .build();
    let mut engine = Engine::new(scenario);
    for _ in 0..50 {
        engine.step();
    }
    engine.command_gap_open(2, 20.0);
    // Give the platoon time to open the gap.
    for _ in 0..150 {
        engine.step();
    }
    let gap_open = engine.world().true_gap(2).unwrap();
    assert!(
        gap_open > 20.0,
        "member 2 should open ~30 m total front gap, got {gap_open}"
    );
    // The gap expires after the join timeout (default 15 s) and closes again.
    for _ in 0..200 {
        engine.step();
    }
    let gap_closed = engine.world().true_gap(2).unwrap();
    assert!(
        gap_closed < 13.0,
        "the phantom gap must close after expiry, got {gap_closed}"
    );
    assert_eq!(engine.summary().collisions, 0);
}

#[test]
fn member_leave_request_is_processed() {
    use platoon_security::proto::envelope::Envelope;
    use platoon_security::proto::messages::PlatoonMessage;
    use platoon_security::sim::attack::{Attack, SecurityAttribute};
    use platoon_security::sim::world::World;
    use platoon_security::v2x::message::{ChannelKind, Frame};
    use rand::rngs::StdRng;
    use std::any::Any;

    /// A member (vehicle 3) announcing its departure at t = 10 s.
    #[derive(Debug)]
    struct Leaver {
        sent: bool,
    }

    impl Attack for Leaver {
        fn name(&self) -> &'static str {
            "leaver"
        }
        fn attribute(&self) -> SecurityAttribute {
            SecurityAttribute::Availability
        }
        fn on_air(&mut self, world: &mut World, _rng: &mut StdRng, frames: &mut Vec<Frame>) {
            if self.sent || world.time < 10.0 {
                return;
            }
            self.sent = true;
            let v = &world.vehicles[3];
            let msg = PlatoonMessage::LeaveRequest {
                member: v.principal,
                platoon: v.platoon,
                timestamp: world.time,
            };
            frames.push(Frame {
                sender: v.node,
                origin: v.position(),
                power_dbm: world.medium.dsrc.default_tx_power_dbm,
                channel: ChannelKind::Dsrc,
                payload: Envelope::plain(v.principal, &msg).encode().into(),
            });
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    let scenario = Scenario::builder()
        .vehicles(5)
        .duration(20.0)
        .seed(63)
        .build();
    let mut engine = Engine::new(scenario);
    engine.add_attack(Box::new(Leaver { sent: false }));
    let s = engine.run();
    assert_eq!(
        engine.maneuvers().roster().len(),
        4,
        "the member left the roster"
    );
    assert_eq!(s.maneuvers.leaves, 1);
    assert!(!engine
        .maneuvers()
        .roster()
        .contains(platoon_security::crypto::cert::PrincipalId(3)));
}

#[test]
fn split_then_legitimate_rejoin_of_capacity() {
    // After a split the front platoon has spare capacity; a joiner fills it.
    let scenario = Scenario::builder()
        .vehicles(4)
        .max_platoon_size(8)
        .duration(40.0)
        .seed(64)
        .build();
    let mut engine = Engine::new(scenario);
    for _ in 0..50 {
        engine.step();
    }
    engine.command_split(2).unwrap();
    engine.add_attack(Box::new(
        JoinerAgent::new(
            PrincipalId(800),
            NodeId(800),
            JoinerCredentials::None,
            PlatoonId(1),
            1.0,
        )
        .with_start(10.0),
    ));
    for _ in 0..350 {
        engine.step();
    }
    let joiner = engine.attacks()[0]
        .as_any()
        .downcast_ref::<JoinerAgent>()
        .unwrap();
    assert!(
        joiner.outcome().accepted,
        "the joiner takes the freed capacity"
    );
}

#[test]
fn split_then_merge_reforms_the_platoon() {
    let scenario = Scenario::builder()
        .vehicles(6)
        .duration(60.0)
        .seed(65)
        .build();
    let mut engine = Engine::new(scenario);
    for _ in 0..50 {
        engine.step();
    }
    engine.command_split(3).unwrap();
    for _ in 0..150 {
        engine.step();
    }
    assert_eq!(engine.world().platoon_count(), 2, "split took effect");

    let merged = engine.command_merge();
    assert_eq!(merged, 3, "three vehicles rejoin");
    for _ in 0..250 {
        engine.step();
    }
    let s = engine.summary();
    assert_eq!(engine.world().platoon_count(), 1, "platoon reformed");
    assert_eq!(engine.maneuvers().roster().len(), 6, "full roster restored");
    assert_eq!(s.collisions, 0);
    // The reformed followers have closed back toward the CACC set-point.
    let gap = engine.world().true_gap(3).unwrap();
    assert!(
        gap < 20.0,
        "the reformed platoon should be closing the gap, got {gap}"
    );
}
