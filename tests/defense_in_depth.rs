//! Integration: the full defense stack against a multi-attack storm.
//!
//! The paper treats each attack and mechanism separately; a real deployment
//! faces them together. This test throws four simultaneous attacks (replay,
//! Sybil, join-flood DoS and a fake-manoeuvre forger) at one platoon and
//! verifies that the layered Table III stack — PKI envelopes, anti-replay
//! windows, VPD-ADA physical checks and resilient control — keeps the
//! platoon intact, stable and honest-members-only.

use platoon_security::prelude::*;

fn storm_scenario(label: &str, auth: AuthMode) -> Scenario {
    Scenario::builder()
        .label(label)
        .vehicles(6)
        .max_platoon_size(16)
        .profile(SpeedProfile::BrakeTest {
            cruise: 25.0,
            low: 15.0,
            brake_at: 8.0,
            hold: 5.0,
        })
        .auth(auth)
        .duration(50.0)
        .seed(77)
        .build()
}

fn add_storm(engine: &mut Engine) {
    engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
        replay_from: 15.0,
        ..Default::default()
    })));
    engine.add_attack(Box::new(SybilAttack::new(SybilConfig {
        start: 10.0,
        ..Default::default()
    })));
    engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig {
        start: 10.0,
        ..Default::default()
    })));
    engine.add_attack(Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
        inject_at: 20.0,
        repeat_period: 5.0,
        ..Default::default()
    })));
}

#[test]
fn undefended_platoon_succumbs_to_the_storm() {
    let mut engine = Engine::new(storm_scenario("storm-undefended", AuthMode::None));
    add_storm(&mut engine);
    let s = engine.run();

    // At least two of the storm's damage channels must show.
    let mut damage = 0;
    if s.oscillation_energy > 10_000.0 {
        damage += 1; // replay destabilised the string
    }
    if engine.maneuvers().roster().len() > 6 {
        damage += 1; // ghosts infiltrated
    }
    if s.fragmented_fraction > 0.2 {
        damage += 1; // forged split broke the platoon
    }
    if s.maneuvers.joins_dropped + s.maneuvers.joins_denied > 50 {
        damage += 1; // the leader drowned in junk requests
    }
    assert!(
        damage >= 2,
        "the storm should hurt an undefended platoon: {damage}"
    );
}

#[test]
fn layered_defenses_ride_out_the_storm() {
    let mut engine = Engine::new(storm_scenario("storm-defended", AuthMode::Pki));
    add_storm(&mut engine);
    engine.add_defense(Box::new(AntiReplayDefense::timestamp()));
    engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
    engine.add_defense(Box::new(
        MitigationDefense::new(MitigationConfig::default()),
    ));
    let s = engine.run();

    assert_eq!(s.collisions, 0, "the defended platoon must not crash");
    assert_eq!(
        engine.maneuvers().roster().len(),
        6,
        "no ghost may enter the roster"
    );
    assert_eq!(s.fragmented_fraction, 0.0, "forged splits must be ignored");
    assert!(
        s.rejected_messages > 500,
        "the stack should be visibly rejecting attack traffic: {}",
        s.rejected_messages
    );

    // Compare stability against the same storm without defenses.
    let mut undefended = Engine::new(storm_scenario("storm-ref", AuthMode::None));
    add_storm(&mut undefended);
    let u = undefended.run();
    assert!(
        s.oscillation_energy < 0.5 * u.oscillation_energy,
        "the stack should cut the disturbance: {} vs {}",
        s.oscillation_energy,
        u.oscillation_energy
    );
}

#[test]
fn defense_stack_does_not_harm_a_clean_platoon() {
    let mut engine = Engine::new(storm_scenario("clean-defended", AuthMode::Pki));
    engine.add_defense(Box::new(AntiReplayDefense::timestamp()));
    engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
    engine.add_defense(Box::new(
        MitigationDefense::new(MitigationConfig::default()),
    ));
    let s = engine.run();

    let clean = Engine::new(storm_scenario("clean-ref", AuthMode::None)).run();
    assert_eq!(s.collisions, 0);
    assert_eq!(s.detections, 0, "no false detections on honest traffic");
    assert!(
        s.max_spacing_error < clean.max_spacing_error * 1.5 + 1.0,
        "defense overhead must not degrade tracking: {} vs {}",
        s.max_spacing_error,
        clean.max_spacing_error
    );
}
