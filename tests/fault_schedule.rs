//! Property tests: *any* seed-derived fault schedule is survivable, leaves
//! the metrics finite, and keeps the harness scheduling-independent.
//!
//! The faults crate promises that `FaultSchedule::from_seed` maps every
//! `u64` to a valid benign-fault mix. These properties hold the whole stack
//! to that: no panic for any drawn schedule, no NaN/∞ leaking into the
//! safety metrics, and batches of faulted runs byte-identical across
//! worker counts (the crash-isolated harness must not let fault state
//! bleed between jobs).

use platoon_security::prelude::*;
use proptest::prelude::*;

const DURATION: f64 = 5.0;
const VEHICLES: usize = 3;

/// One tiny faulted run (3 trucks, 5 simulated seconds — the properties
/// draw 64 cases, so each must stay cheap).
fn faulted_run(schedule_seed: u64, scenario_seed: u64) -> RunSummary {
    let scenario = Scenario::builder()
        .label(format!("fault-prop/{schedule_seed:#x}"))
        .vehicles(VEHICLES)
        .duration(DURATION)
        .seed(scenario_seed)
        // Give RSU blackouts something to take away.
        .rsu((80.0, 8.0))
        .build();
    let mut engine = Engine::new(scenario);
    FaultSchedule::from_seed(schedule_seed, DURATION, VEHICLES).install(&mut engine);
    engine.run()
}

proptest! {
    #[test]
    fn any_fault_schedule_is_survivable(seed in any::<u64>()) {
        let schedule = FaultSchedule::from_seed(seed, DURATION, VEHICLES);
        prop_assert!(!schedule.is_empty(), "every seed yields at least one fault");
        let s = faulted_run(seed, 7);
        // Benign degradation may open gaps and drop frames, but it must
        // never crash the platoon or corrupt the safety metrics.
        prop_assert_eq!(s.collisions, 0);
        prop_assert!(s.min_gap.is_finite(), "min_gap {}", s.min_gap);
        prop_assert!(s.min_gap > 0.0, "min_gap {}", s.min_gap);
        // min_ttc is +∞ when no pair ever closes — legal; NaN is not.
        prop_assert!(!s.min_ttc.is_nan(), "min_ttc {}", s.min_ttc);
        prop_assert!(!s.max_spacing_error.is_nan());
    }

    #[test]
    fn faulted_batches_are_worker_count_invariant(base in any::<u64>()) {
        let batch = |n_jobs: u64| {
            let mut b: Batch<RunSummary> = Batch::new(base);
            for i in 0..n_jobs {
                b.push(format!("cell/{i}"), move |seed| {
                    faulted_run(base.wrapping_add(i), seed)
                });
            }
            b
        };
        let serial = batch(3).run_report(1);
        let parallel = batch(3).run_report(8);
        // Byte-identical canonical documents — and, stronger, identical
        // in-memory summaries including the PerfCounters, which would be
        // the first thing to drift if fault state leaked across workers.
        prop_assert_eq!(
            serial.to_canonical_json(),
            parallel.to_canonical_json()
        );
        for (a, b) in serial.entries.iter().zip(&parallel.entries) {
            prop_assert_eq!(&a.label, &b.label);
            let (sa, sb) = (a.value.as_ok().unwrap(), b.value.as_ok().unwrap());
            prop_assert_eq!(&sa.perf, &sb.perf, "{}", a.label);
        }
    }
}
