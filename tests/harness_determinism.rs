//! Integration: determinism guarantees of the experiment harness.
//!
//! Two properties hold across the full stack (engine + metrics + harness
//! serialization), not just within a single crate's unit tests:
//!
//! 1. Running the same scenario twice yields identical serialized output —
//!    the engine has no hidden global state, wall-clock coupling or
//!    iteration-order dependence.
//! 2. Running the same batch on 1 worker and on N workers yields
//!    byte-identical [`BatchReport`] JSON — per-job seeds derive from the
//!    job label, never from scheduling, and entries are re-slotted into
//!    submission order.

use platoon_security::prelude::*;
use platoon_sim::harness::derive_seed;

fn attack_batch(base_seed: u64) -> Batch<RunSummary> {
    let mut batch = Batch::new(base_seed);
    for (label, auth) in [
        ("det/plain", AuthMode::None),
        ("det/mac", AuthMode::GroupMac),
        ("det/pki", AuthMode::Pki),
    ] {
        batch.push_scenario(
            Scenario::builder()
                .label(label)
                .vehicles(5)
                .auth(auth)
                .duration(12.0)
                .build(),
        );
    }
    // A non-scenario job too: the guarantee covers arbitrary closures.
    batch.push("det/replay-arm", |seed| {
        let mut engine = Engine::new(
            Scenario::builder()
                .label("det/replay-arm")
                .vehicles(5)
                .auth(AuthMode::Pki)
                .duration(12.0)
                .seed(seed)
                .build(),
        );
        engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
            replay_from: 6.0,
            ..Default::default()
        })));
        engine.run()
    });
    batch
}

#[test]
fn same_scenario_twice_serializes_identically() {
    let run = || {
        let mut batch = Batch::new(42);
        batch.push_scenario(
            Scenario::builder()
                .label("det/repeat")
                .vehicles(6)
                .auth(AuthMode::Pki)
                .duration(15.0)
                .build(),
        );
        batch.run_report(1).to_canonical_json()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "repeat runs must serialize byte-identically");
}

#[test]
fn one_worker_and_many_workers_produce_byte_identical_reports() {
    let serial = attack_batch(7).run_report(1);
    let parallel = attack_batch(7).run_report(8);
    assert_eq!(
        serial.to_canonical_json(),
        parallel.to_canonical_json(),
        "worker count leaked into the report"
    );
    // The seeds recorded per entry are the label-derived ones.
    for entry in &serial.entries {
        assert_eq!(entry.seed, derive_seed(&entry.label, 7), "{}", entry.label);
    }
}

#[test]
fn different_base_seeds_produce_different_reports() {
    // Sanity check that the byte-equality above is not vacuous: changing the
    // base seed must actually change the measurements.
    let a = attack_batch(7).run_report(4).to_canonical_json();
    let b = attack_batch(8).run_report(4).to_canonical_json();
    assert_ne!(a, b, "base seed had no effect on the report");
}
