//! Offline vendored stand-in for `serde_derive`.
//!
//! The real derive generates `Serialize`/`Deserialize` impls; the
//! workspace's vendored `serde` instead blanket-implements both marker
//! traits for every type, so these derives only need to *accept* the
//! syntax — `#[derive(Serialize, Deserialize)]` and any `#[serde(...)]`
//! helper attributes — and emit no code at all.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; the blanket impl in `serde` does the rest.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; the blanket impl in `serde` does the rest.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
