//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (not ChaCha12 like upstream, but the workspace only relies
//!   on *determinism given a seed*, never on a specific stream).
//! * [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over half-open `Range`s of `f64`, `u32`, `u64`,
//!   `i64` and `usize`.
//!
//! Everything is `no_std`-free plain Rust with zero dependencies. Streams
//! are stable across platforms and releases: golden test snapshots depend
//! on that, so **never change the generator constants**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array upstream; mirrored here).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64,
    /// exactly like upstream's `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        // 53 random mantissa bits -> u01 in [0, 1).
        let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u01
    }
}

/// Draws a uniform integer in `[0, span)` by 128-bit multiply-shift.
fn uniform_u64(span: u64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(span, rng) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Provided random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded by SplitMix64. Stream quality is more than sufficient for
    /// simulation noise; the constants are frozen because golden snapshots
    /// depend on the exact stream.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would lock xoshiro at zero forever.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respect_bounds_and_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..15);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn stream_is_frozen() {
        // Golden snapshots depend on this exact stream — if this test ever
        // fails the generator constants were changed, which invalidates
        // every golden file in the repository.
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 5987356902031041503);
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
