//! Offline vendored stand-in for [`proptest`](https://proptest-rs.github.io).
//!
//! Supports the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], [`Strategy`] with `prop_map`, [`Just`], `any::<T>()`,
//! numeric `Range` strategies, tuple strategies up to arity 9 and
//! [`collection::vec`].
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: every test draws its cases from a generator seeded
//!   by a stable hash of the test name — failures always reproduce.
//! * **No shrinking**: a failing case panics with the regular assertion
//!   message (the drawn values are `Debug`-printable from the test body).
//! * Fixed case count ([`NUM_CASES`], overridable at compile time only).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Cases drawn per property (upstream default is 256; this is enough to
/// exercise edge regions while keeping `cargo test` fast).
pub const NUM_CASES: u32 = 64;

/// Deterministic per-test case source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the generator for a named test: stable FNV-1a hash of the
    /// name so every property gets an independent but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in a half-open range.
    pub fn uniform_f64(&mut self, range: Range<f64>) -> f64 {
        self.0.gen_range(range)
    }

    /// Uniform `u64` in a half-open range.
    pub fn uniform_u64(&mut self, range: Range<u64>) -> u64 {
        self.0.gen_range(range)
    }
}

/// A source of values for one property-test argument.
pub trait Strategy {
    /// The value produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty strategy range");
                let off = rng.uniform_u64(0..span);
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Uniformly samples the whole domain of primitive types (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-range doubles; upstream's any::<f64>() also yields
        // specials, which none of this workspace's properties rely on.
        rng.uniform_f64(-1e12..1e12)
    }
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    /// The alternatives to choose between.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.uniform_u64(0..self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.uniform_u64(self.len.start as u64..self.len.end as u64) as usize
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports property tests glob in.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

/// Declares deterministic property tests (see crate docs for the
/// differences from upstream).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds (no shrinking: forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::Strategy::boxed($strategy)),+] }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Side {
        Left,
        Right,
    }

    fn arb_side() -> impl Strategy<Value = Side> {
        prop_oneof![Just(Side::Left), Just(Side::Right)]
    }

    proptest! {
        /// Ranges stay in bounds; tuples and maps compose.
        #[test]
        fn sampling_in_bounds(x in 0.0f64..10.0, n in 1usize..5,
                              pair in (0u64..3, -2.0f64..2.0)) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(pair.0 < 3);
            prop_assert!((-2.0..2.0).contains(&pair.1));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_work(side in arb_side(), doubled in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(side == Side::Left || side == Side::Right);
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
