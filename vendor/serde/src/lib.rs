//! Offline vendored stand-in for [`serde`](https://serde.rs).
//!
//! The build environment cannot reach crates.io, and this workspace only
//! ever uses serde as *annotation* — `#[derive(Serialize, Deserialize)]`
//! on config and report types — never through a real `Serializer`. This
//! stand-in therefore provides:
//!
//! * marker traits [`Serialize`] / [`Deserialize`], blanket-implemented
//!   for every type so `T: Serialize` bounds always hold;
//! * re-exported no-op derive macros (so the annotation syntax, including
//!   `#[serde(...)]` helper attributes, compiles unchanged).
//!
//! Canonical machine-readable output (the golden snapshot JSON) is
//! produced by the hand-rolled writer in `platoon_sim::harness::json`,
//! which guarantees byte-stable formatting — something derived serde +
//! serde_json would not give us for free across versions anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (upstream: the serde data model's
/// serialize half). Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for all types.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(test)]
mod tests {
    // Import exactly as downstream code does: trait and derive share the
    // name but live in different namespaces.
    use crate::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    #[serde(rename_all = "snake_case")]
    struct Demo {
        #[serde(default)]
        x: f64,
    }

    fn takes_serialize<T: crate::Serialize>(_t: &T) {}

    #[test]
    fn derive_and_bounds_compile() {
        let d = Demo { x: 1.0 };
        takes_serialize(&d);
        assert_eq!(d, Demo { x: 1.0 });
    }
}
