//! Offline vendored stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset of the API this workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups,
//! `bench_function`, `iter`, `iter_batched` and `sample_size` — with a
//! plain wall-clock measurement loop: a warm-up pass, then `sample_size`
//! timed samples, reporting min/mean/max per benchmark. No statistical
//! analysis, plots or saved baselines; the goal is a working
//! `cargo bench` in an offline build, not publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for API parity; the
/// stand-in always re-runs setup per iteration, outside the timed span).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark (group of one).
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let n = self.sample_size;
        self.benchmark_group("default").sample_size(n).run(name, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let n = self.sample_size;
        self.run_with(name, f, n);
        self
    }

    fn run(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let n = self.sample_size;
        self.run_with(name, f, n);
    }

    fn run_with(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
        samples: usize,
    ) {
        let name = name.into();
        // Warm-up: one untimed pass.
        let mut warm = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed);
        }
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        let mean = times.iter().sum::<Duration>() / samples as u32;
        println!(
            "  {name:<32} min {:>12} mean {:>12} max {:>12} ({samples} samples)",
            fmt(min),
            fmt(mean),
            fmt(max)
        );
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Passed to each benchmark closure; accumulates the timed span.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs built by `setup` (setup is untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group function, upstream-compatible.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_consumes_setup() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed >= Duration::ZERO);
    }
}
