//! # platoon-security
//!
//! A from-scratch Rust reproduction of **Taylor, Ahmad, Nguyen, Shaikh,
//! Evans & Price — "Vehicular Platoon Communication: Cybersecurity Threats
//! and Open Challenges" (IEEE/IFIP DSN-W 2021)**: the canonical, executable
//! attack & defense suite for platoon communication the paper calls for,
//! built on a hand-rolled platooning simulator (Plexe-class dynamics, a
//! DSRC/VLC/C-V2X radio substrate, the platoon management protocol and a
//! simulation-grade PKI).
//!
//! This crate is the facade: it re-exports every member crate and provides
//! the [`prelude`]. See the individual crates for the subsystems:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`crypto`] | SHA-256, HMAC, Schnorr signatures, certificates, pseudonyms, fading-channel key agreement, anti-replay windows |
//! | [`dynamics`] | vehicle model, ACC/CACC/Ploeg/consensus controllers, sensors, stability/fuel/safety metrics |
//! | [`v2x`] | DSRC channel with fading and SINR, CSMA MAC, VLC, C-V2X, jammers |
//! | [`proto`] | beacons, manoeuvre messages, wire codec, envelopes, membership, join/leave/split engine |
//! | [`sim`] | the scenario-driven simulation engine with attack/defense hooks |
//! | [`attacks`] | the Table II attack suite (replay, Sybil, jamming, DoS, …) |
//! | [`defense`] | the Table III mechanism suite (keys, RSU, VPD-ADA, SP-VLC, …) |
//! | [`faults`] | deterministic benign faults (burst loss, sensor outages, clock skew, RSU blackouts) and seed-derived schedules |
//! | [`detect`] | the streaming misbehavior-detection pipeline (kinematic, ranging, frequency, identity, freshness detectors + fusion) |
//! | [`core`] | taxonomies, the ISO/SAE 21434 risk framework and the experiment runner |
//! | [`dataset`] | ML dataset factory: labeled per-beacon columnar shards + the learned-detector baseline |
//!
//! # Quickstart
//!
//! ```
//! use platoon_security::prelude::*;
//!
//! // An 8-truck CACC platoon, 30 simulated seconds, no attacks.
//! let scenario = Scenario::builder().vehicles(8).duration(30.0).build();
//! let summary = Engine::new(scenario).run();
//! assert_eq!(summary.collisions, 0);
//! assert!(summary.string_stable);
//! ```
//!
//! Attacking and defending it:
//!
//! ```
//! use platoon_security::prelude::*;
//!
//! let scenario = Scenario::builder().vehicles(6).duration(20.0).build();
//! let mut engine = Engine::new(scenario);
//! engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
//!     replay_from: 8.0,
//!     ..Default::default()
//! })));
//! engine.add_defense(Box::new(AntiReplayDefense::timestamp()));
//! let summary = engine.run();
//! assert!(summary.rejected_messages > 0); // the replays were filtered
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use platoon_attacks as attacks;
pub use platoon_core as core;
pub use platoon_crypto as crypto;
pub use platoon_dataset as dataset;
pub use platoon_defense as defense;
pub use platoon_detect as detect;
pub use platoon_dynamics as dynamics;
pub use platoon_faults as faults;
pub use platoon_proto as proto;
pub use platoon_sim as sim;
pub use platoon_v2x as v2x;

/// Everything needed to build, attack and defend a platoon.
pub mod prelude {
    pub use platoon_attacks::prelude::*;
    pub use platoon_core::prelude::*;
    pub use platoon_crypto::{
        CertificateAuthority, KeyPair, PrincipalId, SequenceWindow, Signer, SymmetricKey,
        TimestampWindow,
    };
    pub use platoon_dataset::prelude::*;
    pub use platoon_defense::prelude::*;
    pub use platoon_detect::prelude::*;
    pub use platoon_dynamics::prelude::*;
    pub use platoon_faults::{
        BurstPacketLoss, ChannelTarget, ClockSkew, FaultSchedule, FaultWindow, NoiseFloorRamp,
        RsuBlackout, SensorChannel, SensorOutage,
    };
    pub use platoon_sim::prelude::*;
    pub use platoon_v2x::prelude::{
        ChannelKind, DsrcPhy, Jammer, JammingStrategy, NodeId, RadioMedium, VlcPhy,
    };
}
