//! The workspace's front-door binary.
//!
//! ```text
//! cargo run --release -- perf --quick        # perf grid → BENCH_quick.json
//! cargo run --release -- robustness --quick  # fault grid → ROBUSTNESS_quick.json
//! cargo run --release -- trace --quick       # traced run → TRACE_quick.jsonl
//! cargo run --release -- trace-diff A B      # first diverging tick/phase
//! cargo run --release -- corridor --quick    # corridor grid → CORRIDOR_quick.json
//! cargo run --release -- regimes --quick     # regime grid → REGIME_quick.json
//! cargo run --release -- serve               # persistent job server w/ result cache
//! cargo run --release -- submit --experiment smoke --quick  # batch via the server
//! cargo run --release -- campaign --quick    # stealth-vs-damage search → CAMPAIGN_quick.json
//! cargo run --release -- dataset --quick     # labeled shards + learned baseline → DATASET_quick.json
//! cargo run --release -- perf --help         # all perf options
//! ```
//!
//! The full table/figure report stays with the bench crate
//! (`cargo run --release -p platoon-bench --bin report`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("perf") => std::process::exit(platoon_core::perf::cli_main(&args[1..])),
        Some("robustness") => {
            std::process::exit(platoon_core::experiments::robustness::cli_main(&args[1..]))
        }
        Some("trace") => std::process::exit(platoon_core::experiments::trace::cli_main(&args[1..])),
        Some("corridor") => {
            std::process::exit(platoon_core::experiments::corridor::cli_main(&args[1..]))
        }
        Some("regimes") => {
            std::process::exit(platoon_core::experiments::regimes::cli_main(&args[1..]))
        }
        Some("trace-diff") => {
            std::process::exit(platoon_core::experiments::trace::diff_cli_main(&args[1..]))
        }
        Some("serve") => std::process::exit(platoon_server::cli::serve_cli_main(&args[1..])),
        Some("submit") => std::process::exit(platoon_server::cli::submit_cli_main(&args[1..])),
        Some("campaign") => std::process::exit(platoon_campaign::cli::cli_main(&args[1..])),
        Some("dataset") => std::process::exit(platoon_dataset::cli::cli_main(&args[1..])),
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage: platoon-security <command>\n\
                 \x20 perf [options]        run the perf grid and write BENCH_<label>.json\n\
                 \x20                       (see `perf --help`)\n\
                 \x20 robustness [options]  detection quality under benign faults, written\n\
                 \x20                       to ROBUSTNESS_<label>.json (see `robustness --help`)\n\
                 \x20 trace [options]       deterministic per-tick trace of one scenario,\n\
                 \x20                       written to TRACE_<label>.json/.jsonl (see `trace --help`)\n\
                 \x20 trace-diff A B        first diverging tick/phase between two traces\n\
                 \x20 corridor [options]    highway-scale multi-platoon corridor, written to\n\
                 \x20                       CORRIDOR_<label>.json + BENCH_corridor_<label>.json\n\
                 \x20                       (see `corridor --help`)\n\
                 \x20 regimes [options]     detection quality across driving regimes (cruise →\n\
                 \x20                       congestion → stop-and-go → tunnel), written to\n\
                 \x20                       REGIME_<label>.json (see `regimes --help`)\n\
                 \x20 serve [options]       persistent job server with a content-addressed\n\
                 \x20                       result cache (see `serve --help`)\n\
                 \x20 submit [options]      submit an experiment grid to the server (or\n\
                 \x20                       --in-process), writing SERVICE_*.json\n\
                 \x20                       (see `submit --help`)\n\
                 \x20 campaign [options]    adversarial stealth-vs-damage parameter search,\n\
                 \x20                       written to CAMPAIGN_<label>.json (see `campaign --help`)\n\
                 \x20 dataset [options]     labeled per-beacon train/test shards + the learned\n\
                 \x20                       detector baseline, written to DATASET_<label>.json\n\
                 \x20                       (see `dataset --help`)\n\
                 For tables and figures: cargo run --release -p platoon-bench --bin report"
            );
            std::process::exit(if args.is_empty() { 2 } else { 0 });
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}` (try --help)");
            std::process::exit(2);
        }
    }
}
